#include "gpufreq/features/mutual_information.hpp"

#include <algorithm>
#include <cmath>

#include "gpufreq/util/error.hpp"
#include "gpufreq/util/rng.hpp"
#include "gpufreq/util/stats.hpp"
#include "gpufreq/util/thread_pool.hpp"

namespace gpufreq::features {

double digamma(double x) {
  GPUFREQ_REQUIRE(x > 0.0, "digamma: requires positive argument");
  double result = 0.0;
  // Recurrence psi(x) = psi(x+1) - 1/x until x is large enough for the
  // asymptotic series.
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

namespace {
std::vector<double> standardized(std::span<const double> v) {
  const double m = stats::mean(v);
  double s = stats::stdev(v);
  if (s < 1e-15) s = 1.0;
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - m) / s;
  return out;
}
}  // namespace

double mutual_information_ksg(std::span<const double> x, std::span<const double> y,
                              const KsgOptions& opt) {
  GPUFREQ_REQUIRE(x.size() == y.size(), "mutual_information_ksg: size mismatch");
  const std::size_t n = x.size();
  GPUFREQ_REQUIRE(n > opt.k + 1, "mutual_information_ksg: need more samples than k+1");
  GPUFREQ_REQUIRE(opt.k >= 1, "mutual_information_ksg: k must be >= 1");

  std::vector<double> xs = opt.standardize ? standardized(x) : std::vector<double>(x.begin(), x.end());
  std::vector<double> ys = opt.standardize ? standardized(y) : std::vector<double>(y.begin(), y.end());

  // Deterministic tie-breaking jitter (repeated values are common in
  // counter data, and KSG assumes continuous distributions).
  if (opt.tie_noise > 0.0) {
    Rng rng(opt.noise_seed);
    for (auto& v : xs) v += opt.tie_noise * rng.normal();
    for (auto& v : ys) v += opt.tie_noise * rng.normal();
  }

  // The O(n^2) neighbor scan parallelizes over the outer point index. Each
  // chunk accumulates into its own slot and the slots are reduced in chunk
  // order afterwards, so the floating-point sum (and thus the MI estimate)
  // does not depend on the thread count. The scan scratch is per-chunk,
  // and nth_element runs on `dist` directly — it is rebuilt every
  // iteration, so no per-point copy is needed.
  constexpr std::size_t kGrain = 64;
  std::vector<double> partial((n + kGrain - 1) / kGrain, 0.0);
  parallel_for(0, n, kGrain, [&](std::size_t lo, std::size_t hi) {
    std::vector<double> dist(n);
    double chunk_acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      // Chebyshev distances to every other point.
      for (std::size_t j = 0; j < n; ++j) {
        dist[j] = std::max(std::abs(xs[i] - xs[j]), std::abs(ys[i] - ys[j]));
      }
      dist[i] = std::numeric_limits<double>::infinity();
      // k-th smallest distance = radius of the k-neighborhood.
      std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(opt.k - 1),
                       dist.end());
      const double eps = dist[opt.k - 1];

      // Count strictly-inside marginal neighbors.
      std::size_t nx = 0, ny = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        if (std::abs(xs[i] - xs[j]) < eps) ++nx;
        if (std::abs(ys[i] - ys[j]) < eps) ++ny;
      }
      chunk_acc += digamma(static_cast<double>(nx) + 1.0) + digamma(static_cast<double>(ny) + 1.0);
    }
    partial[lo / kGrain] = chunk_acc;
  });
  double acc = 0.0;
  for (const double p : partial) acc += p;

  const double mi = digamma(static_cast<double>(opt.k)) + digamma(static_cast<double>(n)) -
                    acc / static_cast<double>(n);
  return std::max(0.0, mi);
}

double mutual_information_hist(std::span<const double> x, std::span<const double> y,
                               std::size_t bins) {
  GPUFREQ_REQUIRE(x.size() == y.size(), "mutual_information_hist: size mismatch");
  GPUFREQ_REQUIRE(!x.empty(), "mutual_information_hist: empty input");
  GPUFREQ_REQUIRE(bins >= 2, "mutual_information_hist: need at least 2 bins");
  const std::size_t n = x.size();

  const double x_min = stats::min(x), x_max = stats::max(x);
  const double y_min = stats::min(y), y_max = stats::max(y);
  const double x_span = x_max - x_min, y_span = y_max - y_min;
  if (x_span <= 0.0 || y_span <= 0.0) return 0.0;  // a constant carries no information

  auto bin_of = [bins](double v, double lo, double span) {
    auto b = static_cast<std::size_t>((v - lo) / span * static_cast<double>(bins));
    return std::min(b, bins - 1);
  };

  std::vector<double> joint(bins * bins, 0.0), px(bins, 0.0), py(bins, 0.0);
  const double w = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t bx = bin_of(x[i], x_min, x_span);
    const std::size_t by = bin_of(y[i], y_min, y_span);
    joint[bx * bins + by] += w;
    px[bx] += w;
    py[by] += w;
  }

  double mi = 0.0;
  for (std::size_t bx = 0; bx < bins; ++bx) {
    for (std::size_t by = 0; by < bins; ++by) {
      const double pxy = joint[bx * bins + by];
      if (pxy > 0.0) mi += pxy * std::log(pxy / (px[bx] * py[by]));
    }
  }
  return std::max(0.0, mi);
}

}  // namespace gpufreq::features
