#include "gpufreq/features/ranking.hpp"

#include <algorithm>

#include "gpufreq/util/error.hpp"

namespace gpufreq::features {

FeatureRanker::FeatureRanker(KsgOptions options) : options_(options) {}

void FeatureRanker::add_feature(std::string name, std::vector<double> values) {
  GPUFREQ_REQUIRE(!name.empty(), "FeatureRanker: feature name must not be empty");
  GPUFREQ_REQUIRE(!values.empty(), "FeatureRanker: feature column must not be empty");
  if (!columns_.empty()) {
    GPUFREQ_REQUIRE(values.size() == columns_.front().size(),
                    "FeatureRanker: column length mismatch");
  }
  names_.push_back(std::move(name));
  columns_.push_back(std::move(values));
}

std::vector<FeatureScore> FeatureRanker::rank(const std::vector<double>& target) const {
  GPUFREQ_REQUIRE(!columns_.empty(), "FeatureRanker: no features added");
  GPUFREQ_REQUIRE(target.size() == columns_.front().size(),
                  "FeatureRanker: target length mismatch");

  std::vector<FeatureScore> scores;
  scores.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    FeatureScore s;
    s.feature = names_[i];
    s.mi = mutual_information_ksg(columns_[i], target, options_);
    scores.push_back(std::move(s));
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const FeatureScore& a, const FeatureScore& b) { return a.mi > b.mi; });
  const double best = scores.front().mi;
  for (auto& s : scores) s.mi_normalized = best > 0.0 ? s.mi / best : 0.0;
  return scores;
}

std::vector<std::string> FeatureRanker::top_k(const std::vector<double>& target,
                                              std::size_t k) const {
  const auto scores = rank(target);
  std::vector<std::string> out;
  for (std::size_t i = 0; i < std::min(k, scores.size()); ++i) out.push_back(scores[i].feature);
  return out;
}

}  // namespace gpufreq::features
