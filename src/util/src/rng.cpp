#include "gpufreq/util/rng.hpp"

#include <cmath>
#include <numeric>

#include "gpufreq/util/error.hpp"

namespace gpufreq {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  GPUFREQ_REQUIRE(n > 0, "uniform_index: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal_jitter(double sigma) { return std::exp(normal(0.0, sigma)); }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork(std::uint64_t label) const { return Rng(hash_combine(seed_, label)); }

std::uint64_t Rng::hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t v : {a, b}) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint64_t Rng::hash_string(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace gpufreq
