#include "gpufreq/util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "gpufreq/util/thread_annotations.hpp"

namespace gpufreq::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}
}  // namespace

namespace detail {
Mutex& write_mutex() {
  static Mutex m;
  return m;
}
}  // namespace detail

void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

bool enabled(Level lvl) { return static_cast<int>(lvl) >= static_cast<int>(level()); }

void write(Level lvl, const std::string& module, const std::string& message) {
  if (!enabled(lvl) || message.empty()) return;
  MutexLock lock(detail::write_mutex());
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(lvl), module.c_str(), message.c_str());
}

}  // namespace gpufreq::log
