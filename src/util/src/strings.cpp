#include "gpufreq/util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "gpufreq/util/error.hpp"

namespace gpufreq::strings {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

double parse_double(std::string_view text) {
  const std::string_view t = trim(text);
  // std::from_chars<double> is available in GCC 11+; use it for locale safety.
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw ParseError("parse_double: cannot parse '" + std::string(text) + "'");
  }
  return value;
}

long long parse_int(std::string_view text) {
  const std::string_view t = trim(text);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw ParseError("parse_int: cannot parse '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace gpufreq::strings
