#include "gpufreq/util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "gpufreq/util/error.hpp"
#include "gpufreq/util/strings.hpp"

namespace gpufreq::csv {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  GPUFREQ_REQUIRE(cells.size() == header_.size(), "csv: row width does not match header");
  rows_.push_back(std::move(cells));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  GPUFREQ_REQUIRE(row < rows_.size(), "csv: row out of range");
  GPUFREQ_REQUIRE(col < header_.size(), "csv: column out of range");
  return rows_[row][col];
}

double Table::cell_double(std::size_t row, std::size_t col) const {
  return strings::parse_double(cell(row, col));
}

std::size_t Table::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw InvalidArgument("csv: no column named '" + name + "'");
}

std::vector<double> Table::column_as_double(const std::string& name) const {
  const std::size_t col = column_index(name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(strings::parse_double(row[col]));
  return out;
}

std::string escape_field(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

void Table::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) os << ',';
    os << escape_field(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << escape_field(row[i]);
    }
    os << '\n';
  }
}

void Table::save(const std::string& path) const {
  std::ofstream ofs(path);
  if (!ofs) throw IoError("csv: cannot open '" + path + "' for writing");
  write(ofs);
  if (!ofs) throw IoError("csv: write failed for '" + path + "'");
}

Table Table::read(std::istream& is) {
  // Full RFC 4180 record parser: newlines inside quoted fields belong to
  // the field, so records are assembled character by character rather than
  // line by line.
  Table table;
  bool have_header = false;

  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool record_has_content = false;

  auto finish_record = [&]() {
    fields.push_back(std::move(current));
    current.clear();
    if (!have_header) {
      table.header_ = std::move(fields);
      have_header = true;
    } else {
      if (fields.size() != table.header_.size()) {
        throw ParseError("csv: row width " + std::to_string(fields.size()) +
                         " != header width " + std::to_string(table.header_.size()));
      }
      table.rows_.push_back(std::move(fields));
    }
    fields.clear();
    record_has_content = false;
  };

  char c = 0;
  while (is.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (is.peek() == '"') {
          current += '"';
          is.get();
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
      record_has_content = true;
    } else if (c == '"') {
      in_quotes = true;
      record_has_content = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      record_has_content = true;
    } else if (c == '\n') {
      if (record_has_content || !fields.empty() || !current.empty()) finish_record();
    } else if (c == '\r') {
      // CRLF tolerated; the '\n' terminates the record.
    } else {
      current += c;
      record_has_content = true;
    }
  }
  if (in_quotes) throw ParseError("csv: unterminated quoted field");
  if (record_has_content || !fields.empty() || !current.empty()) finish_record();

  if (!have_header) throw ParseError("csv: empty input (no header row)");
  return table;
}

Table Table::load(const std::string& path) {
  std::ifstream ifs(path);
  if (!ifs) throw IoError("csv: cannot open '" + path + "' for reading");
  return read(ifs);
}

}  // namespace gpufreq::csv
