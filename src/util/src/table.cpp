#include "gpufreq/util/table.hpp"

#include <algorithm>
#include <sstream>

#include "gpufreq/util/error.hpp"
#include "gpufreq/util/strings.hpp"

namespace gpufreq::util {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {
  GPUFREQ_REQUIRE(!header_.empty(), "AsciiTable: header must not be empty");
  align_.assign(header_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  GPUFREQ_REQUIRE(cells.size() == header_.size(), "AsciiTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

AsciiTable& AsciiTable::begin_row() {
  rows_.emplace_back();
  return *this;
}

AsciiTable& AsciiTable::cell(const std::string& text) {
  GPUFREQ_REQUIRE(!rows_.empty(), "AsciiTable: call begin_row() first");
  GPUFREQ_REQUIRE(rows_.back().size() < header_.size(), "AsciiTable: row overflow");
  rows_.back().push_back(text);
  return *this;
}

AsciiTable& AsciiTable::cell(double value, int decimals) {
  return cell(strings::format_double(value, decimals));
}

AsciiTable& AsciiTable::cell(long long value) { return cell(std::to_string(value)); }

void AsciiTable::set_align(std::size_t col, Align align) {
  GPUFREQ_REQUIRE(col < align_.size(), "AsciiTable: column out of range");
  align_[col] = align;
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = widths[c] - text.size();
      os << ' ';
      if (align_[c] == Align::kLeft) {
        os << text << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << text;
      }
      os << " |";
    }
    os << '\n';
  };

  rule();
  emit_row(header_);
  rule();
  for (const auto& row : rows_) emit_row(row);
  rule();
  return os.str();
}

std::string bar_line(const std::string& label, double value, double max_value,
                     int width, int label_width, int decimals) {
  std::ostringstream os;
  std::string lbl = label;
  if (static_cast<int>(lbl.size()) > label_width) lbl.resize(static_cast<std::size_t>(label_width));
  os << lbl << std::string(static_cast<std::size_t>(label_width) - lbl.size(), ' ') << " |";
  int fill = 0;
  if (max_value > 0.0) {
    fill = static_cast<int>(value / max_value * width + 0.5);
    fill = std::clamp(fill, 0, width);
  }
  os << std::string(static_cast<std::size_t>(fill), '#')
     << std::string(static_cast<std::size_t>(width - fill), ' ') << "| "
     << strings::format_double(value, decimals);
  return os.str();
}

}  // namespace gpufreq::util
