#include "gpufreq/util/error.hpp"

#include <string>

// Cold failure funnels for the contract macros in error.hpp.
//
// These are deliberately out-of-line and marked cold: a GPUFREQ_REQUIRE in a
// hot function must compile down to `test; jcc; ...` on the success path with
// the whole message-formatting + exception-allocation + unwind machinery
// behind one call into this TU. tools/analyze/gpufreq_hotpath.py treats
// `gpufreq::detail::fail_*` as sanctioned cold boundaries (see
// tools/analyze/hotpath_allow.txt), which is only sound because nothing here
// ever returns into the caller.

#if defined(__GNUC__) || defined(__clang__)
#define GPUFREQ_COLD_FN __attribute__((cold, noinline))
#else
#define GPUFREQ_COLD_FN
#endif

namespace gpufreq {
namespace detail {

GPUFREQ_COLD_FN void fail_invalid(const char* msg) {
  throw InvalidArgument(std::string("gpufreq: ") + msg);
}

GPUFREQ_COLD_FN void fail_invalid(const std::string& msg) {
  throw InvalidArgument("gpufreq: " + msg);
}

GPUFREQ_COLD_FN void fail_contract(const char* expr, const char* file, long line, const char* msg) {
  throw ContractViolation(std::string("gpufreq: DCHECK failed: (") + expr + ") at " + file + ":" +
                          std::to_string(line) + ": " + msg);
}

GPUFREQ_COLD_FN void fail_non_finite(const char* expr, const char* file, long line,
                                     std::size_t index, double value) {
  throw NumericError(std::string("gpufreq: non-finite value in ") + expr + " at " + file + ":" +
                     std::to_string(line) + " (element " + std::to_string(index) + " = " +
                     std::to_string(value) + ")");
}

}  // namespace detail
}  // namespace gpufreq
