#include "gpufreq/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "gpufreq/util/error.hpp"

namespace gpufreq::stats {

double mean(std::span<const double> xs) {
  GPUFREQ_REQUIRE(!xs.empty(), "mean: empty input");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stdev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  GPUFREQ_REQUIRE(!xs.empty(), "min: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  GPUFREQ_REQUIRE(!xs.empty(), "max: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  GPUFREQ_REQUIRE(!xs.empty(), "percentile: empty input");
  GPUFREQ_REQUIRE(p >= 0.0 && p <= 100.0, "percentile: p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

namespace {
void require_same_size(std::span<const double> a, std::span<const double> b, const char* who) {
  GPUFREQ_REQUIRE(a.size() == b.size(), std::string(who) + ": size mismatch");
  GPUFREQ_REQUIRE(!a.empty(), std::string(who) + ": empty input");
}
}  // namespace

double mae(std::span<const double> actual, std::span<const double> predicted) {
  require_same_size(actual, predicted, "mae");
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) s += std::abs(actual[i] - predicted[i]);
  return s / static_cast<double>(actual.size());
}

double rmse(std::span<const double> actual, std::span<const double> predicted) {
  require_same_size(actual, predicted, "rmse");
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(actual.size()));
}

double mape(std::span<const double> actual, std::span<const double> predicted, double eps) {
  require_same_size(actual, predicted, "mape");
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(actual[i]) < eps) continue;
    s += std::abs((actual[i] - predicted[i]) / actual[i]);
    ++n;
  }
  return n > 0 ? 100.0 * s / static_cast<double>(n) : 0.0;
}

double mape_accuracy(std::span<const double> actual, std::span<const double> predicted) {
  return std::max(0.0, 100.0 - mape(actual, predicted));
}

double r2(std::span<const double> actual, std::span<const double> predicted) {
  require_same_size(actual, predicted, "r2");
  const double m = mean(actual);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - m) * (actual[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  require_same_size(xs, ys, "pearson");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::size_t argmin(std::span<const double> xs) {
  GPUFREQ_REQUIRE(!xs.empty(), "argmin: empty input");
  return static_cast<std::size_t>(std::min_element(xs.begin(), xs.end()) - xs.begin());
}

std::size_t argmax(std::span<const double> xs) {
  GPUFREQ_REQUIRE(!xs.empty(), "argmax: empty input");
  return static_cast<std::size_t>(std::max_element(xs.begin(), xs.end()) - xs.begin());
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stdev() const { return std::sqrt(variance()); }

}  // namespace gpufreq::stats
