#include "gpufreq/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "gpufreq/util/thread_annotations.hpp"

namespace gpufreq {

namespace {

thread_local bool t_inside_worker = false;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("GPUFREQ_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// One in-flight parallel_chunks call: workers and the caller race on
/// `next` to claim chunk indices; `done` counts finished chunks and
/// `active` counts workers still inside work_on (the caller must not
/// destroy the batch while any worker can still touch it). `active` and
/// `error` are guarded by the pool's mutex_; they cannot carry a
/// GPUFREQ_GUARDED_BY annotation because Batch is declared before Pool, so
/// the discipline is enforced by the annotated accesses in Pool instead.
struct Batch {
  detail::ChunkFn fn;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::size_t active = 0;    // guarded by Pool::mutex_
  std::exception_ptr error;  // first failure only, guarded by Pool::mutex_
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() { shutdown(); }

  std::size_t size() {
    MutexLock lock(mutex_);
    return workers_.size() + 1;
  }

  void resize(std::size_t n) {
    shutdown();
    MutexLock lock(mutex_);
    stop_ = false;
    // Oversized requests (e.g. GPUFREQ_NUM_THREADS=99999) would exhaust
    // process thread limits; cap them, and if spawning still fails keep
    // the workers we got — correctness never depends on the count.
    constexpr std::size_t kMaxThreads = 256;
    const std::size_t target = std::min(n == 0 ? default_thread_count() : n, kMaxThreads);
    for (std::size_t i = 0; i + 1 < target; ++i) {
      try {
        workers_.emplace_back([this] { worker_loop(); });
      } catch (const std::system_error&) {
        break;
      }
    }
  }

  void run(Batch& batch) {
    {
      MutexLock lock(mutex_);
      batch_ = &batch;
      ++batch_id_;
    }
    cv_work_.notify_all();
    work_on(batch);  // the caller is a full participant
    MutexLock lock(mutex_);
    batch_ = nullptr;  // late wakers must not join a finished batch
    cv_done_.wait(lock.native(), [&] {
      mutex_.assert_held();
      return batch.done.load() == batch.count && batch.active == 0;
    });
    if (batch.error) std::rethrow_exception(batch.error);
  }

 private:
  Pool() { resize(0); }

  void shutdown() {
    {
      MutexLock lock(mutex_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  void work_on(Batch& batch) {
    std::size_t c;
    while ((c = batch.next.fetch_add(1)) < batch.count) {
      try {
        batch.fn(c);
      } catch (...) {
        MutexLock lock(mutex_);
        if (!batch.error) batch.error = std::current_exception();
      }
      if (batch.done.fetch_add(1) + 1 == batch.count) {
        // Lock so the notification cannot slip between the caller's
        // predicate check and its sleep.
        MutexLock lock(mutex_);
        cv_done_.notify_all();
      }
    }
  }

  void worker_loop() {
    t_inside_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      Batch* batch = nullptr;
      {
        MutexLock lock(mutex_);
        cv_work_.wait(lock.native(), [&] {
          mutex_.assert_held();
          return stop_ || (batch_ != nullptr && batch_id_ != seen);
        });
        if (stop_) return;
        batch = batch_;
        seen = batch_id_;
        ++batch->active;
      }
      work_on(*batch);
      {
        MutexLock lock(mutex_);
        --batch->active;
        cv_done_.notify_all();
      }
    }
  }

  Mutex mutex_;
  std::condition_variable cv_work_, cv_done_;
  // Joined in shutdown() with the lock released (a worker needs mutex_ to
  // observe stop_ and exit), so workers_ cannot be GUARDED_BY(mutex_);
  // resize/shutdown are documented as not thread-safe in the header.
  std::vector<std::thread> workers_;
  Batch* batch_ GPUFREQ_GUARDED_BY(mutex_) = nullptr;  // at most one in flight
  std::uint64_t batch_id_ GPUFREQ_GUARDED_BY(mutex_) = 0;
  bool stop_ GPUFREQ_GUARDED_BY(mutex_) = false;
};

}  // namespace

std::size_t num_threads() { return Pool::instance().size(); }

void set_num_threads(std::size_t n) { Pool::instance().resize(n); }

namespace detail {

void parallel_chunks(std::size_t chunk_count, ChunkFn run_chunk) {
  if (chunk_count == 0) return;
  // Inline execution when nesting inside a pool worker (deadlock-free) or
  // when the pool is effectively serial. Chunk order matches the parallel
  // claim order for a single participant, so results are identical.
  if (t_inside_worker || chunk_count == 1 || Pool::instance().size() == 1) {
    for (std::size_t c = 0; c < chunk_count; ++c) run_chunk(c);
    return;
  }
  Batch batch;
  batch.fn = run_chunk;
  batch.count = chunk_count;
  Pool::instance().run(batch);
}

}  // namespace detail

}  // namespace gpufreq
