#pragma once

#include <mutex>

// Portable clang thread-safety annotations (no-ops on GCC/MSVC, which
// simply ignore the attributes) plus the annotated Mutex/MutexLock
// wrappers that make them usable with libstdc++. Clang's analysis only
// understands lock/unlock functions that carry acquire/release attributes;
// libstdc++'s std::mutex and std::lock_guard are unannotated, so guarding
// state with them teaches the analyzer nothing. gpufreq code that protects
// shared state therefore uses gpufreq::Mutex + gpufreq::MutexLock and
// declares the protected members GPUFREQ_GUARDED_BY(mutex_); a clang build
// (CI's clang job, or any local clang) then rejects every unlocked access
// at compile time via -Wthread-safety (enabled in gpufreq_warnings).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define GPUFREQ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GPUFREQ_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability ("mutex" names the kind).
#define GPUFREQ_CAPABILITY(x) GPUFREQ_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires in its constructor and releases in
/// its destructor.
#define GPUFREQ_SCOPED_CAPABILITY GPUFREQ_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define GPUFREQ_GUARDED_BY(x) GPUFREQ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by the given capability.
#define GPUFREQ_PT_GUARDED_BY(x) GPUFREQ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while holding the listed capabilities.
#define GPUFREQ_REQUIRES(...) \
  GPUFREQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define GPUFREQ_ACQUIRE(...) \
  GPUFREQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define GPUFREQ_RELEASE(...) \
  GPUFREQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts acquisition; first argument is the success value.
#define GPUFREQ_TRY_ACQUIRE(...) \
  GPUFREQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities
/// (deadlock prevention for non-reentrant locks).
#define GPUFREQ_EXCLUDES(...) GPUFREQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime no-op that tells the analysis the capability is held here.
/// Needed inside lambdas (condition-variable predicates): the analysis is
/// intraprocedural, so a lambda body does not inherit the caller's lock set.
#define GPUFREQ_ASSERT_CAPABILITY(x) \
  GPUFREQ_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define GPUFREQ_RETURN_CAPABILITY(x) GPUFREQ_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the locking cannot be expressed.
#define GPUFREQ_NO_THREAD_SAFETY_ANALYSIS \
  GPUFREQ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gpufreq {

/// std::mutex with capability annotations. Use together with
/// GPUFREQ_GUARDED_BY on every member the mutex protects.
class GPUFREQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GPUFREQ_ACQUIRE() { m_.lock(); }
  void unlock() GPUFREQ_RELEASE() { m_.unlock(); }
  bool try_lock() GPUFREQ_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Assert (to the static analysis only; no runtime effect) that this
  /// mutex is held. For condition-variable wait predicates.
  void assert_held() const GPUFREQ_ASSERT_CAPABILITY(this) {}

  /// The wrapped mutex, for std::condition_variable interop.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock for gpufreq::Mutex (the annotated std::lock_guard /
/// std::unique_lock replacement). `native()` exposes the underlying
/// std::unique_lock so std::condition_variable::wait can drop and reacquire
/// the lock; pair such waits with Mutex::assert_held() in the predicate.
class GPUFREQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) GPUFREQ_ACQUIRE(m) : lock_(m.native()) {}
  ~MutexLock() GPUFREQ_RELEASE() {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace gpufreq
