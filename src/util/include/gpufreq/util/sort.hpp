#pragma once

// Recursion-free sorting for GPUFREQ_HOT paths.
//
// std::sort is introsort: its quicksort stage (__introsort_loop) recurses
// on one partition, so the resource-bound gate (tools/analyze/
// gpufreq_bounds.py) rejects it — any cycle reachable from a hot root
// makes the worst-case stack depth unbounded. bounded_sort is heapsort:
// libstdc++'s make_heap/sort_heap sift entirely in loops, giving O(1)
// stack at O(n log n) compares. The constant factor loses to introsort on
// large arrays, but hot-path sorts here are DVFS frequency grids
// (~dozens of entries), where the difference is noise.

#include <algorithm>

namespace gpufreq::detail {

template <typename RandomIt>
inline void bounded_sort(RandomIt first, RandomIt last) {
  std::make_heap(first, last);
  std::sort_heap(first, last);
}

}  // namespace gpufreq::detail
