#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gpufreq::stats {

/// Arithmetic mean. Requires a non-empty span.
double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator); 0 for fewer than two elements.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stdev(std::span<const double> xs);

/// Minimum / maximum. Require non-empty spans.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// Mean absolute error between same-length vectors.
double mae(std::span<const double> actual, std::span<const double> predicted);

/// Root mean squared error.
double rmse(std::span<const double> actual, std::span<const double> predicted);

/// Mean absolute percentage error, in percent. Entries with |actual| below
/// `eps` are skipped (MAPE is undefined at zero); returns 0 if all skipped.
double mape(std::span<const double> actual, std::span<const double> predicted,
            double eps = 1e-12);

/// Model "accuracy" as the paper reports it: 100 - MAPE, clamped to >= 0.
double mape_accuracy(std::span<const double> actual, std::span<const double> predicted);

/// Coefficient of determination R^2 (can be negative for bad fits).
double r2(std::span<const double> actual, std::span<const double> predicted);

/// Pearson linear correlation coefficient; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Index of the smallest element. Requires non-empty input; ties -> first.
std::size_t argmin(std::span<const double> xs);

/// Index of the largest element. Requires non-empty input; ties -> first.
std::size_t argmax(std::span<const double> xs);

/// Online mean/variance accumulator (Welford). Useful for streaming samples
/// out of the DCGM-like profiler without buffering.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stdev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace gpufreq::stats
