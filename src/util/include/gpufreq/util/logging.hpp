#pragma once

#include <sstream>
#include <string>

#include "gpufreq/util/thread_annotations.hpp"

namespace gpufreq::log {

/// Severity levels, ordered. Messages below the global threshold are dropped.
enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global log threshold (thread-safe; relaxed atomic).
void set_level(Level level);

/// Current global log threshold.
Level level();

/// True if a message at `lvl` would currently be emitted.
bool enabled(Level lvl);

namespace detail {
/// The mutex serializing emitted log lines (stderr interleaving guard).
/// Exposed so write() can declare, checkably, that callers must not
/// already hold it: LineStream destructors fire at unpredictable points,
/// and re-entering write() under the lock would self-deadlock.
Mutex& write_mutex();
}  // namespace detail

/// Emit one log line ("[level] module: message") to stderr. Thread-safe;
/// lines from concurrent threads never interleave.
void write(Level lvl, const std::string& module, const std::string& message)
    GPUFREQ_EXCLUDES(detail::write_mutex());

namespace detail {
class LineStream {
 public:
  LineStream(Level lvl, std::string module) : lvl_(lvl), module_(std::move(module)) {}
  ~LineStream() { write(lvl_, module_, ss_.str()); }
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  template <typename T>
  LineStream& operator<<(const T& value) {
    ss_ << value;
    return *this;
  }

 private:
  Level lvl_;
  std::string module_;
  std::ostringstream ss_;
};
}  // namespace detail

/// Streaming helpers: log::info("sim") << "clock set to " << mhz << " MHz";
inline detail::LineStream debug(std::string module) { return {Level::kDebug, std::move(module)}; }
inline detail::LineStream info(std::string module) { return {Level::kInfo, std::move(module)}; }
inline detail::LineStream warn(std::string module) { return {Level::kWarn, std::move(module)}; }
inline detail::LineStream error(std::string module) { return {Level::kError, std::move(module)}; }

}  // namespace gpufreq::log
