#pragma once

#include <string>
#include <vector>

namespace gpufreq::util {

/// Column alignment for AsciiTable rendering.
enum class Align { kLeft, kRight };

/// Minimal ASCII table renderer used by the bench harnesses to print
/// paper-style tables (Table 3, Table 4, ...). Cells are strings; numeric
/// helpers format with fixed decimals.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Append a full row of preformatted cells (width must match header).
  void add_row(std::vector<std::string> cells);

  /// Start a new row and append cells incrementally.
  AsciiTable& begin_row();
  AsciiTable& cell(const std::string& text);
  AsciiTable& cell(double value, int decimals = 2);
  AsciiTable& cell(long long value);

  /// Set per-column alignment (default: left for col 0, right otherwise).
  void set_align(std::size_t col, Align align);

  /// Render with unicode-free box drawing: +----+----+.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

/// Render a simple horizontal bar chart line: label | ######### value.
/// Used by figure benches to sketch the paper's plots in a terminal.
[[nodiscard]] std::string bar_line(const std::string& label, double value, double max_value,
                                   int width = 50, int label_width = 18, int decimals = 2);

}  // namespace gpufreq::util
