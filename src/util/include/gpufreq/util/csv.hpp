#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpufreq::csv {

/// In-memory CSV table: a header row plus string cells. The DCGM-like
/// profiler persists one file per (workload, frequency, run), mirroring the
/// paper's launch-module output format (§4.1).
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> header);

  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header_.size(); }

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Cell accessors. Throw InvalidArgument on out-of-range indices.
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;
  [[nodiscard]] double cell_double(std::size_t row, std::size_t col) const;

  /// Column index by name; throws InvalidArgument if absent.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;

  /// Whole column parsed as doubles.
  [[nodiscard]] std::vector<double> column_as_double(const std::string& name) const;

  /// Serialize to a stream / file. Values containing commas, quotes, or
  /// newlines are quoted per RFC 4180.
  void write(std::ostream& os) const;
  void save(const std::string& path) const;

  /// Parse from a stream / file. The first row is treated as the header.
  [[nodiscard]] static Table read(std::istream& is);
  [[nodiscard]] static Table load(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a single CSV field if needed (RFC 4180).
[[nodiscard]] std::string escape_field(const std::string& field);

/// Split one CSV line honoring quotes. Exposed for testing.
[[nodiscard]] std::vector<std::string> parse_line(const std::string& line);

}  // namespace gpufreq::csv
