#pragma once

#include <stdexcept>
#include <string>

namespace gpufreq {

/// Base class for all exceptions thrown by the gpufreq library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes arguments that violate an API contract
/// (out-of-range frequency, empty dataset, mismatched dimensions, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (missing CSV file, unwritable results path, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when parsing structured text (CSV, serialized models) fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& msg) { throw InvalidArgument(msg); }
}  // namespace detail

/// GPUFREQ_REQUIRE(cond, msg): contract check that throws InvalidArgument.
/// Used at public API boundaries; internal invariants use assert().
#define GPUFREQ_REQUIRE(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::gpufreq::detail::throw_invalid(std::string("gpufreq: ") + (msg)); \
    }                                                                   \
  } while (false)

}  // namespace gpufreq
