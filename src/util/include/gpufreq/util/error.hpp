#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>

namespace gpufreq {

/// Base class for all exceptions thrown by the gpufreq library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes arguments that violate an API contract
/// (out-of-range frequency, empty dataset, mismatched dimensions, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (missing CSV file, unwritable results path, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when parsing structured text (CSV, serialized models) fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a GPUFREQ_DCHECK-guarded internal invariant fails. Only
/// raised in builds where the debug checks are compiled in (see
/// GPUFREQ_DCHECK_ENABLED below); a release binary never constructs one.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

/// Thrown when a numeric pipeline produces a non-finite value (NaN/Inf):
/// diverged training loss, poisoned model prediction, corrupt weights.
/// Carrying the origin (expression, file:line, offending index) lets a NaN
/// surface where it was created instead of as a wrong "optimal" frequency.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

namespace detail {
// Cold, out-of-line failure funnels (src/util/src/error.cpp). Every
// contract macro routes its failure branch through one of these so the
// message formatting, exception allocation, and __cxa_throw machinery
// live in ONE cold symbol instead of being inlined into every caller.
// That is what lets the static hot-path analyzer
// (tools/analyze/gpufreq_hotpath.py) prove a hot function throw- and
// allocation-free on its success path: the only failure-side code left at
// the call site is a compare and a call to a `gpufreq::detail::fail_*`
// boundary. Hot-path call sites must pass string literals; the
// std::string overload exists for cold API boundaries that compose their
// message (composition would otherwise allocate inside the caller).
[[noreturn]] void fail_invalid(const char* msg);
[[noreturn]] void fail_invalid(const std::string& msg);

[[noreturn]] void fail_contract(const char* expr, const char* file, long line, const char* msg);

[[noreturn]] void fail_non_finite(const char* expr, const char* file, long line, std::size_t index,
                                  double value);

inline void check_finite(std::span<const float> v, const char* expr, const char* file, long line) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) fail_non_finite(expr, file, line, i, static_cast<double>(v[i]));
  }
}

inline void check_finite(std::span<const double> v, const char* expr, const char* file, long line) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) fail_non_finite(expr, file, line, i, v[i]);
  }
}

inline void check_finite(double v, const char* expr, const char* file, long line) {
  if (!std::isfinite(v)) fail_non_finite(expr, file, line, 0, v);
}

/// Anything exposing a flat() span of elements (nn::Matrix) checks its
/// whole payload.
template <typename M>
  requires requires(const M& m) { m.flat(); }
inline void check_finite(const M& m, const char* expr, const char* file, long line) {
  check_finite(m.flat(), expr, file, line);
}
}  // namespace detail

/// GPUFREQ_REQUIRE(cond, msg): contract check that throws InvalidArgument
/// ("gpufreq: " is prepended by the funnel). Used at public API boundaries;
/// always compiled in. With a string-literal message the failure branch is
/// just a call into the cold funnel — no allocation or throw machinery is
/// inlined at the call site, which is what keeps GPUFREQ_HOT functions
/// statically clean (tools/analyze/gpufreq_hotpath.py).
#define GPUFREQ_REQUIRE(cond, msg)          \
  do {                                      \
    if (!(cond)) {                          \
      ::gpufreq::detail::fail_invalid(msg); \
    }                                       \
  } while (false)

/// Debug invariant checks are on in any build without NDEBUG (Debug,
/// RelWithDebInfo without NDEBUG) and can be forced into optimized builds
/// by defining GPUFREQ_ENABLE_DCHECKS (the sanitizer leg of
/// tools/run_static_analysis.sh does this).
#if !defined(NDEBUG) || defined(GPUFREQ_ENABLE_DCHECKS)
#define GPUFREQ_DCHECK_ENABLED 1
#else
#define GPUFREQ_DCHECK_ENABLED 0
#endif

#if GPUFREQ_DCHECK_ENABLED
/// GPUFREQ_DCHECK(cond, msg): internal invariant check. Throws
/// ContractViolation in debug builds; compiled out (condition not
/// evaluated) in release builds.
#define GPUFREQ_DCHECK(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::gpufreq::detail::fail_contract(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                      \
  } while (false)

/// GPUFREQ_DCHECK_FINITE(x): debug-only whole-payload NaN/Inf scan of a
/// matrix, span, vector, or scalar. Used inside hot kernels (GEMM results,
/// optimizer parameter updates) where an always-on scan would be
/// measurable; throws NumericError naming the expression and element.
#define GPUFREQ_DCHECK_FINITE(x) \
  ::gpufreq::detail::check_finite((x), #x, __FILE__, __LINE__)
#else
#define GPUFREQ_DCHECK(cond, msg) \
  do {                            \
    (void)sizeof((cond));         \
  } while (false)
#define GPUFREQ_DCHECK_FINITE(x) \
  do {                           \
    (void)sizeof(&(x));          \
  } while (false)
#endif

/// GPUFREQ_CHECK_FINITE(x): always-on NaN/Inf scan, for places where the
/// check is cheap relative to the surrounding work (per-epoch training
/// loss, the 61-row DVFS prediction sweep, deserialized weights). Throws
/// NumericError with the expression and offending element.
#define GPUFREQ_CHECK_FINITE(x) \
  ::gpufreq::detail::check_finite((x), #x, __FILE__, __LINE__)

}  // namespace gpufreq
