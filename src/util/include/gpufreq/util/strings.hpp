#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gpufreq::strings {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style double formatting with a fixed number of decimals.
std::string format_double(double value, int decimals);

/// Parse a double; throws ParseError with context on failure.
double parse_double(std::string_view text);

/// Parse an integer; throws ParseError with context on failure.
long long parse_int(std::string_view text);

}  // namespace gpufreq::strings
