#pragma once

#include <cstdint>
#include <vector>

namespace gpufreq {

/// Deterministic, portable pseudo-random number generator (xoshiro256**)
/// seeded via splitmix64. Every stochastic component of the library takes an
/// explicit Rng (or a seed) so that simulations, dataset generation, and
/// model training are exactly reproducible across runs and platforms.
class Rng {
 public:
  /// Construct from a 64-bit seed; the seed is expanded with splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Box–Muller, cached spare).
  double normal();

  /// Normal deviate with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal multiplicative jitter: exp(normal(0, sigma)). Useful for
  /// strictly-positive measurement noise.
  double lognormal_jitter(double sigma);

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (stable given the same label).
  /// Used to give each (workload, frequency, run) its own stream so adding
  /// a workload does not perturb the noise of the others.
  Rng fork(std::uint64_t label) const;

  /// Combine values into a single stable 64-bit hash (FNV-1a over words).
  static std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

  /// Stable 64-bit hash of a string (FNV-1a).
  static std::uint64_t hash_string(const char* s);

 private:
  std::uint64_t state_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
  std::uint64_t seed_;  // retained for fork()
};

}  // namespace gpufreq
