#pragma once

// Hot-path purity annotations.
//
// The repo's marquee performance property — the fused inference chain and
// the SweepService drain are allocation-free, lock-free, and throw-free in
// steady state — is enforced two ways:
//
//   * dynamically, by the counting-operator-new tests
//     (tests/test_serve_alloc.cpp, tests/test_inference_sweep.cpp), which
//     prove the property on the exact paths the tests execute, and
//   * statically, by tools/analyze/gpufreq_hotpath.py, which disassembles
//     the built static libraries, builds the symbol-level call graph, and
//     proves that NO path out of an annotated root reaches a forbidden
//     sink (operator new/malloc/free, __cxa_throw, pthread_mutex_lock,
//     write/fwrite/ostream, unlisted external calls, unvetted indirect
//     calls).
//
// GPUFREQ_HOT declares a function a hot-path root. It expands to a static
// string in a dedicated ELF section ("gpufreq_hotpath"), so the annotation
// survives into the compiled object with zero code-size or runtime cost
// and no compiler plugin: the analyzer recovers the root list with
// `readelf -p` and also writes it out as the build's hotpath_roots.txt
// manifest.
//
// Usage — first statement of the function definition, naming the function
// with its full qualification exactly as `c++filt` spells it (anonymous
// namespaces included):
//
//   void SweepService::drain_locked() {
//     GPUFREQ_HOT("gpufreq::serve::SweepService::drain_locked");
//     ...
//   }
//
// Matching is by substring against the demangled symbol name, so one
// annotation also covers the function's compiler-generated clones
// ([clone .cold], .constprop, .isra) and any lambdas defined inside it
// (their mangled names embed the enclosing function) — which is how the
// bodies handed to parallel_for stay inside the verified surface.
//
// An annotation whose string matches no defined symbol fails the analyzer
// (exit 2), so renames cannot silently drop a root from the contract.
// The flip side — a justified exception for a sanctioned sink, e.g. the
// drain's queue handshake mutex — lives in tools/analyze/hotpath_allow.txt
// and must carry a written justification (see DESIGN.md §8).

#define GPUFREQ_HOT_SECTION_NAME "gpufreq_hotpath"

#if defined(__GNUC__) || defined(__clang__)
#define GPUFREQ_HOT_CAT2(a, b) a##b
#define GPUFREQ_HOT_CAT(a, b) GPUFREQ_HOT_CAT2(a, b)
// `used` keeps the string alive without any reference; `section` routes it
// into the marker section the analyzer strips back out. The initializer is
// a constant, so no static-init guard is emitted into the function.
#define GPUFREQ_HOT(qualified_name)                                       \
  static const char GPUFREQ_HOT_CAT(gpufreq_hot_root_, __COUNTER__)[]     \
      __attribute__((used, section(GPUFREQ_HOT_SECTION_NAME))) =          \
          qualified_name
#else
// Non-ELF / non-GNU toolchains: the annotation is inert (the analyzer only
// runs against GNU-toolchain artifacts anyway).
#define GPUFREQ_HOT(qualified_name) static_assert(true, "")
#endif
