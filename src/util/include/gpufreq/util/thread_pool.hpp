#pragma once

#include <algorithm>
#include <cstddef>

namespace gpufreq {

/// Number of threads the global pool computes with (>= 1, caller included).
/// Initialized on first use from GPUFREQ_NUM_THREADS, falling back to the
/// hardware concurrency.
std::size_t num_threads();

/// Resize the global pool. n == 0 restores the GPUFREQ_NUM_THREADS /
/// hardware default. Not safe to call concurrently with parallel_for.
void set_num_threads(std::size_t n);

namespace detail {
/// Non-owning chunk callback: a context pointer plus trampoline, built by
/// parallel_for from a stack lambda. Deliberately not std::function — the
/// capture list of parallel_for's adapter lambda exceeded the small-buffer
/// size, so every multi-chunk call heap-allocated, which would show up as
/// an allocation in the otherwise allocation-free inference sweep. The
/// callee never outlives the parallel_chunks call, so borrowing is safe.
struct ChunkFn {
  void* ctx = nullptr;
  void (*invoke)(void* ctx, std::size_t chunk) = nullptr;
  void operator()(std::size_t chunk) const { invoke(ctx, chunk); }
};

/// Run chunk indices [0, chunk_count) on the pool (caller participates).
/// `run_chunk` must be safe to invoke from several threads at once. The
/// first exception thrown by any chunk is rethrown on the caller after all
/// chunks finished. Calls from inside a pool worker execute inline
/// (serially), so nested parallel_for is safe and deadlock-free.
void parallel_chunks(std::size_t chunk_count, ChunkFn run_chunk);
}  // namespace detail

/// Apply fn(chunk_begin, chunk_end) over [begin, end) split into chunks of
/// `grain` items. The partitioning depends only on (begin, end, grain) —
/// never on the thread count — so a reduction that combines per-chunk
/// results in chunk order is bitwise-stable for any set_num_threads value.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, Fn&& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t count = (end - begin + grain - 1) / grain;
  if (count == 1) {
    fn(begin, end);
    return;
  }
  auto body = [&fn, begin, end, grain](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    fn(lo, std::min(end, lo + grain));
  };
  detail::parallel_chunks(
      count, detail::ChunkFn{&body, [](void* ctx, std::size_t c) {
                               (*static_cast<decltype(body)*>(ctx))(c);
                             }});
}

}  // namespace gpufreq
