#pragma once

// Out-of-line workspace-vector mutations for GPUFREQ_HOT functions.
//
// std::vector::resize/assign/push_back inline their growth slow path
// (operator new + copy + operator delete + __throw_length_error) straight
// into the caller at -O2, which would make every hot function that touches
// a workspace vector statically reach an allocation even though the
// steady state never grows (workspaces are reserved to their high-water
// mark up front; the counting-operator-new tests prove it dynamically).
//
// These helpers move the whole mutation — fast path and growth path —
// behind one non-inlined call, so a GPUFREQ_HOT caller contains a single
// direct call edge that the hot-path analyzer
// (tools/analyze/gpufreq_hotpath.py) sanctions as a vetted boundary
// (tools/analyze/hotpath_allow.txt), instead of an inlined operator-new
// call site it would have to reject. Only use them for workspace vectors
// with a pre-reserve story; anything else should keep the ordinary
// std::vector calls and let the analyzer complain.

#include <cstddef>
#include <utility>
#include <vector>

namespace gpufreq::detail {

#if defined(__GNUC__) || defined(__clang__)
#define GPUFREQ_OUTLINE __attribute__((noinline))
#else
#define GPUFREQ_OUTLINE
#endif

/// v.resize(n) behind a call boundary (capacity-reusing in steady state).
template <class T>
GPUFREQ_OUTLINE void workspace_resize(std::vector<T>& v, std::size_t n) {
  v.resize(n);
}

/// v.assign(first, last) behind a call boundary.
template <class T>
GPUFREQ_OUTLINE void workspace_assign(std::vector<T>& v, const T* first, const T* last) {
  v.assign(first, last);
}

/// v.push_back(value) behind a call boundary (never grows once the
/// workspace is reserved to its high-water mark).
template <class T, class V>
GPUFREQ_OUTLINE void workspace_push(std::vector<T>& v, V&& value) {
  v.push_back(std::forward<V>(value));
}

#undef GPUFREQ_OUTLINE

}  // namespace gpufreq::detail
