#include "gpufreq/workloads/registry.hpp"

#include <cmath>

#include "gpufreq/util/error.hpp"
#include "gpufreq/util/strings.hpp"

namespace gpufreq::workloads {

WorkloadDescriptor make_descriptor(std::string_view name, Suite suite, Role role,
                                   Category category, const TimeBudget& b,
                                   const ReferenceGpu& ref) {
  GPUFREQ_REQUIRE(b.runtime_s > 0.0, "make_descriptor: runtime must be positive");
  GPUFREQ_REQUIRE(b.serial_frac >= 0.0 && b.serial_frac < 1.0,
                  "make_descriptor: serial_frac out of [0,1)");
  GPUFREQ_REQUIRE(b.tc >= 0.0 && b.tm >= 0.0 && b.tl >= 0.0,
                  "make_descriptor: negative time weights");
  GPUFREQ_REQUIRE(b.tc + b.tm + b.tl > 0.0, "make_descriptor: no GPU work");

  // The GPU-resident portion of the runtime. The execution model overlaps
  // the three components with a smooth-max of order p, so we scale the
  // weights such that smoothmax(Tc, Tm, Tl) equals the GPU time budget.
  constexpr double kOverlapOrder = 8.0;
  const double t_gpu = b.runtime_s * (1.0 - b.serial_frac);
  const double norm = std::pow(std::pow(b.tc, kOverlapOrder) + std::pow(b.tm, kOverlapOrder) +
                                   std::pow(b.tl, kOverlapOrder),
                               1.0 / kOverlapOrder);
  const double tc = b.tc / norm * t_gpu;
  const double tm = b.tm / norm * t_gpu;
  const double tl = b.tl / norm * t_gpu;

  // Convert compute time into FLOP work split across precisions. The mixed
  // pipe throughput is the harmonic mean weighted by the precision split.
  double gflop = 0.0;
  if (tc > 0.0) {
    const double f64 = b.fp64_frac;
    const double inv_mix = f64 / ref.peak_fp64_gflops + (1.0 - f64) / ref.peak_fp32_gflops;
    const double mix_rate = inv_mix > 0.0 ? 1.0 / inv_mix : ref.peak_fp32_gflops;
    gflop = tc * mix_rate * b.fp_issue_eff;
  }

  WorkloadDescriptor d;
  d.name = std::string(name);
  d.suite = suite;
  d.role = role;
  d.category = category;
  d.gflop_fp64 = gflop * b.fp64_frac;
  d.gflop_fp32 = gflop * (1.0 - b.fp64_frac);
  d.gbytes_dram = tm * ref.achievable_bw_gbs * b.mem_eff;
  d.latency_seconds = tl;
  d.serial_seconds = b.runtime_s * b.serial_frac;
  d.fp_issue_eff = b.fp_issue_eff;
  d.mem_eff = b.mem_eff;
  d.occupancy = b.occupancy;
  d.sm_busy = b.sm_busy;
  d.flop_scale_exp = b.flop_scale_exp;
  d.byte_scale_exp = b.byte_scale_exp;
  d.pcie_tx_gbps = b.pcie_tx_gbps;
  d.pcie_rx_gbps = b.pcie_rx_gbps;
  d.validate();
  return d;
}

namespace {

std::vector<WorkloadDescriptor> build_registry() {
  std::vector<WorkloadDescriptor> v;
  v.reserve(27);
  const Suite kMicro = Suite::kMicro;
  const Suite kSpec = Suite::kSpecAccel;
  const Suite kReal = Suite::kRealWorld;
  const Role kTrain = Role::kTraining;
  const Role kEval = Role::kEvaluation;

  // --- Micro-benchmarks (training) -------------------------------------
  // DGEMM: the canonical compute-bound kernel; ~TDP power at f_max.
  v.push_back(make_descriptor("dgemm", kMicro, kTrain, Category::kCompute,
      {.tc = 1.0, .tm = 0.22, .tl = 0.01, .runtime_s = 12.0, .serial_frac = 0.02,
       .fp64_frac = 1.0, .fp_issue_eff = 0.92, .mem_eff = 0.80,
       .occupancy = 0.62, .sm_busy = 0.98,
       .flop_scale_exp = 3.0, .byte_scale_exp = 2.75,
       .pcie_tx_gbps = 0.3, .pcie_rx_gbps = 0.8}));
  // STREAM: the canonical bandwidth-bound kernel; ~50% TDP at f_max.
  v.push_back(make_descriptor("stream", kMicro, kTrain, Category::kMemory,
      {.tc = 0.04, .tm = 1.0, .tl = 0.03, .runtime_s = 10.0, .serial_frac = 0.02,
       .fp64_frac = 1.0, .fp_issue_eff = 0.90, .mem_eff = 0.93,
       .occupancy = 0.82, .sm_busy = 0.96,
       .flop_scale_exp = 1.0, .byte_scale_exp = 1.0,
       .pcie_tx_gbps = 0.2, .pcie_rx_gbps = 0.4}));

  // --- SPEC ACCEL (training) -------------------------------------------
  v.push_back(make_descriptor("tpacf", kSpec, kTrain, Category::kCompute,
      {.tc = 0.95, .tm = 0.18, .tl = 0.06, .runtime_s = 22.0, .serial_frac = 0.04,
       .fp64_frac = 0.90, .fp_issue_eff = 0.78, .mem_eff = 0.55,
       .occupancy = 0.48, .sm_busy = 0.95, .flop_scale_exp = 2.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("stencil", kSpec, kTrain, Category::kMemory,
      {.tc = 0.30, .tm = 0.95, .tl = 0.08, .runtime_s = 18.0, .serial_frac = 0.03,
       .fp64_frac = 0.80, .fp_issue_eff = 0.55, .mem_eff = 0.82,
       .occupancy = 0.70, .sm_busy = 0.94, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("lbm", kSpec, kTrain, Category::kMemory,
      {.tc = 0.24, .tm = 1.0, .tl = 0.07, .runtime_s = 25.0, .serial_frac = 0.03,
       .fp64_frac = 1.0, .fp_issue_eff = 0.50, .mem_eff = 0.88,
       .occupancy = 0.75, .sm_busy = 0.95, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("fft", kSpec, kTrain, Category::kMixed,
      {.tc = 0.72, .tm = 0.74, .tl = 0.05, .runtime_s = 15.0, .serial_frac = 0.05,
       .fp64_frac = 0.50, .fp_issue_eff = 0.68, .mem_eff = 0.72,
       .occupancy = 0.58, .sm_busy = 0.93, .flop_scale_exp = 1.1, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("spmv", kSpec, kTrain, Category::kMemory,
      {.tc = 0.14, .tm = 0.88, .tl = 0.42, .runtime_s = 14.0, .serial_frac = 0.04,
       .fp64_frac = 1.0, .fp_issue_eff = 0.35, .mem_eff = 0.62,
       .occupancy = 0.52, .sm_busy = 0.90, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("mriq", kSpec, kTrain, Category::kCompute,
      {.tc = 1.0, .tm = 0.14, .tl = 0.03, .runtime_s = 16.0, .serial_frac = 0.03,
       .fp64_frac = 0.05, .fp_issue_eff = 0.85, .mem_eff = 0.45,
       .occupancy = 0.55, .sm_busy = 0.97, .flop_scale_exp = 2.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("histo", kSpec, kTrain, Category::kMemory,
      {.tc = 0.18, .tm = 0.80, .tl = 0.48, .runtime_s = 12.0, .serial_frac = 0.06,
       .fp64_frac = 0.20, .fp_issue_eff = 0.30, .mem_eff = 0.58,
       .occupancy = 0.45, .sm_busy = 0.88, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("bfs", kSpec, kTrain, Category::kLatency,
      {.tc = 0.07, .tm = 0.50, .tl = 1.0, .runtime_s = 11.0, .serial_frac = 0.10,
       .fp64_frac = 0.0, .fp_issue_eff = 0.20, .mem_eff = 0.40,
       .occupancy = 0.35, .sm_busy = 0.80, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("cutcp", kSpec, kTrain, Category::kCompute,
      {.tc = 0.95, .tm = 0.22, .tl = 0.05, .runtime_s = 19.0, .serial_frac = 0.03,
       .fp64_frac = 0.10, .fp_issue_eff = 0.80, .mem_eff = 0.50,
       .occupancy = 0.60, .sm_busy = 0.96, .flop_scale_exp = 2.0, .byte_scale_exp = 1.3}));
  v.push_back(make_descriptor("kmeans", kSpec, kTrain, Category::kMixed,
      {.tc = 0.60, .tm = 0.68, .tl = 0.20, .runtime_s = 13.0, .serial_frac = 0.18,
       .fp64_frac = 0.30, .fp_issue_eff = 0.58, .mem_eff = 0.66,
       .occupancy = 0.50, .sm_busy = 0.90, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("lavamd", kSpec, kTrain, Category::kCompute,
      {.tc = 0.90, .tm = 0.28, .tl = 0.10, .runtime_s = 21.0, .serial_frac = 0.04,
       .fp64_frac = 0.85, .fp_issue_eff = 0.74, .mem_eff = 0.55,
       .occupancy = 0.56, .sm_busy = 0.95, .flop_scale_exp = 1.5, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("cfd", kSpec, kTrain, Category::kMemory,
      {.tc = 0.34, .tm = 0.92, .tl = 0.14, .runtime_s = 24.0, .serial_frac = 0.04,
       .fp64_frac = 1.0, .fp_issue_eff = 0.52, .mem_eff = 0.78,
       .occupancy = 0.68, .sm_busy = 0.94, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("nw", kSpec, kTrain, Category::kLatency,
      {.tc = 0.10, .tm = 0.24, .tl = 0.92, .runtime_s = 9.0, .serial_frac = 0.16,
       .fp64_frac = 0.0, .fp_issue_eff = 0.18, .mem_eff = 0.35,
       .occupancy = 0.20, .sm_busy = 0.58, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("hotspot", kSpec, kTrain, Category::kMixed,
      {.tc = 0.55, .tm = 0.78, .tl = 0.10, .runtime_s = 14.0, .serial_frac = 0.05,
       .fp64_frac = 0.60, .fp_issue_eff = 0.62, .mem_eff = 0.74,
       .occupancy = 0.64, .sm_busy = 0.93, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("lud", kSpec, kTrain, Category::kCompute,
      {.tc = 0.85, .tm = 0.32, .tl = 0.14, .runtime_s = 17.0, .serial_frac = 0.05,
       .fp64_frac = 0.90, .fp_issue_eff = 0.70, .mem_eff = 0.52,
       .occupancy = 0.46, .sm_busy = 0.92, .flop_scale_exp = 2.6, .byte_scale_exp = 2.0}));
  v.push_back(make_descriptor("ge", kSpec, kTrain, Category::kCompute,
      {.tc = 0.80, .tm = 0.38, .tl = 0.10, .runtime_s = 15.0, .serial_frac = 0.06,
       .fp64_frac = 0.95, .fp_issue_eff = 0.66, .mem_eff = 0.56,
       .occupancy = 0.50, .sm_busy = 0.93, .flop_scale_exp = 2.6, .byte_scale_exp = 2.0}));
  v.push_back(make_descriptor("srad", kSpec, kTrain, Category::kMixed,
      {.tc = 0.50, .tm = 0.82, .tl = 0.12, .runtime_s = 12.0, .serial_frac = 0.05,
       .fp64_frac = 0.40, .fp_issue_eff = 0.54, .mem_eff = 0.76,
       .occupancy = 0.60, .sm_busy = 0.92, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("heartwall", kSpec, kTrain, Category::kMixed,
      {.tc = 0.64, .tm = 0.58, .tl = 0.24, .runtime_s = 20.0, .serial_frac = 0.15,
       .fp64_frac = 0.25, .fp_issue_eff = 0.60, .mem_eff = 0.60,
       .occupancy = 0.42, .sm_busy = 0.88, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));
  v.push_back(make_descriptor("bplustree", kSpec, kTrain, Category::kLatency,
      {.tc = 0.11, .tm = 0.30, .tl = 0.88, .runtime_s = 10.0, .serial_frac = 0.30,
       .fp64_frac = 0.0, .fp_issue_eff = 0.16, .mem_eff = 0.38,
       .occupancy = 0.24, .sm_busy = 0.62, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0}));

  // --- Real-world applications (evaluation, unseen in training) ---------
  // Unlike dense kernels, whole applications interleave compute-, memory-,
  // and latency-bound kernels, so their wall time is much less
  // clock-sensitive than DGEMM (the paper's Table 5 shows ~9% slowdown for
  // a ~21% downclock on LAMMPS).
  // LAMMPS Lennard-Jones 3D melt: FP64 MD, neighbor-list latency heavy.
  v.push_back(make_descriptor("lammps", kReal, kEval, Category::kCompute,
      {.tc = 0.55, .tm = 0.95, .tl = 0.85, .runtime_s = 60.0, .serial_frac = 0.04,
       .fp64_frac = 0.95, .fp_issue_eff = 0.72, .mem_eff = 0.68,
       .occupancy = 0.55, .sm_busy = 0.95, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0,
       .pcie_tx_gbps = 0.6, .pcie_rx_gbps = 0.6}));
  // NAMD ApoA1: mixed-precision MD with some host-side integration.
  v.push_back(make_descriptor("namd", kReal, kEval, Category::kCompute,
      {.tc = 0.55, .tm = 0.95, .tl = 0.82, .runtime_s = 80.0, .serial_frac = 0.07,
       .fp64_frac = 0.30, .fp_issue_eff = 0.68, .mem_eff = 0.62,
       .occupancy = 0.52, .sm_busy = 0.93, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0,
       .pcie_tx_gbps = 0.9, .pcie_rx_gbps = 0.9}));
  // GROMACS water box: large CPU share -> GPU clock has little effect on
  // wall time (the paper observed exactly this, §5.1).
  v.push_back(make_descriptor("gromacs", kReal, kEval, Category::kMixed,
      {.tc = 0.45, .tm = 0.50, .tl = 1.0, .runtime_s = 45.0, .serial_frac = 0.58,
       .fp64_frac = 0.40, .fp_issue_eff = 0.60, .mem_eff = 0.62,
       .occupancy = 0.48, .sm_busy = 0.90, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0,
       .pcie_tx_gbps = 1.2, .pcie_rx_gbps = 1.2}));
  // LSTM sentiment classifier: tiny kernels, input-pipeline stalls -> low
  // utilization, almost DVFS-insensitive runtime.
  v.push_back(make_descriptor("lstm", kReal, kEval, Category::kLatency,
      {.tc = 0.12, .tm = 0.65, .tl = 0.85, .runtime_s = 30.0, .serial_frac = 0.62,
       .fp64_frac = 0.0, .fp_issue_eff = 0.22, .mem_eff = 0.30,
       .occupancy = 0.16, .sm_busy = 0.55, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0,
       .pcie_tx_gbps = 1.5, .pcie_rx_gbps = 2.5}));
  // BERT fine-tuning on the movie-review set: FP32/TF32 compute heavy but
  // attention kernels are bandwidth-hungry.
  v.push_back(make_descriptor("bert", kReal, kEval, Category::kCompute,
      {.tc = 0.58, .tm = 1.0, .tl = 0.60, .runtime_s = 40.0, .serial_frac = 0.08,
       .fp64_frac = 0.0, .fp_issue_eff = 0.78, .mem_eff = 0.70,
       .occupancy = 0.58, .sm_busy = 0.94, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0,
       .pcie_tx_gbps = 1.0, .pcie_rx_gbps = 2.0}));
  // ResNet50 on CIFAR-10: convolution-dominated, the most clock-sensitive
  // of the evaluation apps (the paper's outlier in Tables 5/6).
  v.push_back(make_descriptor("resnet50", kReal, kEval, Category::kCompute,
      {.tc = 1.0, .tm = 0.62, .tl = 0.30, .runtime_s = 50.0, .serial_frac = 0.04,
       .fp64_frac = 0.0, .fp_issue_eff = 0.84, .mem_eff = 0.70,
       .occupancy = 0.62, .sm_busy = 0.97, .flop_scale_exp = 1.0, .byte_scale_exp = 1.0,
       .pcie_tx_gbps = 0.8, .pcie_rx_gbps = 3.0}));

  return v;
}

}  // namespace

const std::vector<WorkloadDescriptor>& all() {
  static const std::vector<WorkloadDescriptor> registry = build_registry();
  return registry;
}

const WorkloadDescriptor& find(std::string_view name) {
  const std::string lower = strings::to_lower(name);
  for (const auto& w : all()) {
    if (w.name == lower) return w;
  }
  throw InvalidArgument("workloads: unknown workload '" + std::string(name) + "'");
}

bool contains(std::string_view name) {
  const std::string lower = strings::to_lower(name);
  for (const auto& w : all()) {
    if (w.name == lower) return true;
  }
  return false;
}

std::vector<WorkloadDescriptor> training_set() {
  std::vector<WorkloadDescriptor> out;
  for (const auto& w : all()) {
    if (w.role == Role::kTraining) out.push_back(w);
  }
  return out;
}

std::vector<WorkloadDescriptor> evaluation_set() {
  std::vector<WorkloadDescriptor> out;
  for (const auto& w : all()) {
    if (w.role == Role::kEvaluation) out.push_back(w);
  }
  return out;
}

std::vector<std::string> names() {
  std::vector<std::string> out;
  out.reserve(all().size());
  for (const auto& w : all()) out.push_back(w.name);
  return out;
}

}  // namespace gpufreq::workloads
