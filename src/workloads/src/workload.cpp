#include "gpufreq/workloads/workload.hpp"

#include <cmath>

#include "gpufreq/util/error.hpp"

namespace gpufreq::workloads {

const char* to_string(Suite suite) {
  switch (suite) {
    case Suite::kMicro: return "micro";
    case Suite::kSpecAccel: return "spec-accel";
    case Suite::kRealWorld: return "real-world";
  }
  return "?";
}

const char* to_string(Role role) {
  switch (role) {
    case Role::kTraining: return "training";
    case Role::kEvaluation: return "evaluation";
  }
  return "?";
}

const char* to_string(Category category) {
  switch (category) {
    case Category::kCompute: return "compute";
    case Category::kMemory: return "memory";
    case Category::kMixed: return "mixed";
    case Category::kLatency: return "latency";
  }
  return "?";
}

double WorkloadDescriptor::fp64_fraction() const {
  const double total = gflop_fp64 + gflop_fp32;
  return total > 0.0 ? gflop_fp64 / total : 0.0;
}

double WorkloadDescriptor::total_gflop(double input_scale) const {
  return (gflop_fp64 + gflop_fp32) * std::pow(input_scale, flop_scale_exp);
}

double WorkloadDescriptor::total_gbytes(double input_scale) const {
  return gbytes_dram * std::pow(input_scale, byte_scale_exp);
}

double WorkloadDescriptor::scaled_latency_seconds(double input_scale) const {
  // Latency-bound sections (pointer chasing, divergence) scale with the
  // traversal size, which we tie to the byte scaling law.
  return latency_seconds * std::pow(input_scale, byte_scale_exp);
}

double WorkloadDescriptor::arithmetic_intensity(double input_scale) const {
  const double bytes = total_gbytes(input_scale);
  return bytes > 0.0 ? total_gflop(input_scale) / bytes : 0.0;
}

void WorkloadDescriptor::validate() const {
  GPUFREQ_REQUIRE(!name.empty(), "workload: name must not be empty");
  GPUFREQ_REQUIRE(gflop_fp64 >= 0.0 && gflop_fp32 >= 0.0, "workload: negative FLOP work");
  GPUFREQ_REQUIRE(gbytes_dram >= 0.0, "workload: negative DRAM traffic");
  GPUFREQ_REQUIRE(latency_seconds >= 0.0, "workload: negative latency work");
  GPUFREQ_REQUIRE(serial_seconds >= 0.0, "workload: negative serial time");
  GPUFREQ_REQUIRE(fp_issue_eff > 0.0 && fp_issue_eff <= 1.0, "workload: fp_issue_eff out of (0,1]");
  GPUFREQ_REQUIRE(mem_eff > 0.0 && mem_eff <= 1.0, "workload: mem_eff out of (0,1]");
  GPUFREQ_REQUIRE(occupancy >= 0.0 && occupancy <= 1.0, "workload: occupancy out of [0,1]");
  GPUFREQ_REQUIRE(sm_busy >= 0.0 && sm_busy <= 1.0, "workload: sm_busy out of [0,1]");
  GPUFREQ_REQUIRE(flop_scale_exp >= 0.0 && byte_scale_exp >= 0.0,
                  "workload: scaling exponents must be non-negative");
  GPUFREQ_REQUIRE(pcie_tx_gbps >= 0.0 && pcie_rx_gbps >= 0.0, "workload: negative PCIe rate");
  GPUFREQ_REQUIRE(gflop_fp64 + gflop_fp32 + gbytes_dram + latency_seconds + serial_seconds > 0.0,
                  "workload: descriptor has no work at all");
}

}  // namespace gpufreq::workloads
