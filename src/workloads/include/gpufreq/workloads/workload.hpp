#pragma once

#include <string>
#include <vector>

namespace gpufreq::workloads {

/// Which benchmark suite a workload belongs to (paper Table 2).
enum class Suite { kMicro, kSpecAccel, kRealWorld };

/// Paper role: training workloads feed the offline phase; evaluation
/// workloads are the unseen real applications of §5.
enum class Role { kTraining, kEvaluation };

/// Dominant computational-intensity class (used for reporting and for
/// property tests; the simulator derives behaviour from the work amounts,
/// not from this label).
enum class Category { kCompute, kMemory, kMixed, kLatency };

const char* to_string(Suite suite);
const char* to_string(Role role);
const char* to_string(Category category);

/// Intrinsic, hardware-independent description of a GPU workload.
///
/// A workload is modeled as four kinds of "work":
///   * `gflop_fp64` / `gflop_fp32`  — floating-point work, consumed at the
///     GPU's (frequency-scaled) pipe throughput;
///   * `gbytes_dram`                — DRAM traffic, consumed at the GPU's
///     (knee-saturating) achievable bandwidth;
///   * `latency_seconds`            — memory-latency/divergence-bound time
///     at the reference maximum clock, which improves only weakly with
///     frequency;
///   * `serial_seconds`             — host/driver/launch time that does not
///     depend on the GPU core clock at all.
///
/// The quantities are calibrated on the GA100 reference in the registry but
/// are *intrinsic*: executing the same descriptor on a GV100 spec yields
/// different times/power because that GPU has different peaks — which is
/// exactly how the paper's cross-architecture portability study works.
struct WorkloadDescriptor {
  std::string name;
  Suite suite = Suite::kMicro;
  Role role = Role::kTraining;
  Category category = Category::kMixed;

  // Work amounts at input_scale = 1.
  double gflop_fp64 = 0.0;      ///< FP64 work (GFLOP)
  double gflop_fp32 = 0.0;      ///< FP32 work (GFLOP)
  double gbytes_dram = 0.0;     ///< DRAM traffic (GB)
  double latency_seconds = 0.0; ///< latency-bound time at reference f_max (s)
  double serial_seconds = 0.0;  ///< clock-independent host time (s)

  // Efficiency / shape parameters.
  double fp_issue_eff = 0.85;   ///< fraction of peak pipe throughput achieved
  double mem_eff = 0.85;        ///< fraction of achievable bandwidth achieved
  double occupancy = 0.5;       ///< sm_occupancy counter level [0,1]
  double sm_busy = 0.9;         ///< sm_active level while GPU work runs [0,1]

  // Input-size scaling laws: work *= scale^exp.
  double flop_scale_exp = 1.0;
  double byte_scale_exp = 1.0;

  // PCIe traffic rates while running (GB/s), roughly clock-independent.
  double pcie_tx_gbps = 0.5;
  double pcie_rx_gbps = 0.5;

  /// FP64 fraction of total floating-point work (0 if no FP at all).
  double fp64_fraction() const;

  /// Total floating-point work at the given input scale (GFLOP).
  double total_gflop(double input_scale = 1.0) const;

  /// DRAM traffic at the given input scale (GB).
  double total_gbytes(double input_scale = 1.0) const;

  /// Latency-bound seconds at the given input scale.
  double scaled_latency_seconds(double input_scale = 1.0) const;

  /// Arithmetic intensity (FLOP / byte) — scale-dependent when the scaling
  /// exponents differ.
  double arithmetic_intensity(double input_scale = 1.0) const;

  /// Validate invariants (non-negative work, fractions in range). Throws
  /// InvalidArgument on violation.
  void validate() const;
};

}  // namespace gpufreq::workloads
