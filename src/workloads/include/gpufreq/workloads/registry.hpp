#pragma once

#include <string_view>
#include <vector>

#include "gpufreq/workloads/workload.hpp"

namespace gpufreq::workloads {

/// Tuning knobs used to synthesize a WorkloadDescriptor from a *time budget*
/// on the GA100 reference GPU. `tc : tm : tl` are the relative magnitudes of
/// the compute-bound, bandwidth-bound, and latency-bound time components at
/// the reference maximum clock; `runtime_s` is the total wall time there
/// (including the `serial_frac` clock-independent share). The registry turns
/// these into intrinsic work amounts (GFLOP, GB, latency seconds).
struct TimeBudget {
  double tc = 1.0;           ///< relative compute-bound time weight
  double tm = 0.3;           ///< relative bandwidth-bound time weight
  double tl = 0.05;          ///< relative latency-bound time weight
  double runtime_s = 10.0;   ///< total runtime at GA100 f_max (s)
  double serial_frac = 0.03; ///< clock-independent fraction of runtime_s
  double fp64_frac = 1.0;    ///< FP64 share of the floating-point work
  double fp_issue_eff = 0.85;
  double mem_eff = 0.85;
  double occupancy = 0.5;
  double sm_busy = 0.9;
  double flop_scale_exp = 1.0;
  double byte_scale_exp = 1.0;
  double pcie_tx_gbps = 0.5;
  double pcie_rx_gbps = 0.5;
};

/// Reference GA100 constants used to convert time budgets into intrinsic
/// work. They intentionally match the sim module's GA100 preset so that a
/// descriptor built for a budget reproduces that budget when simulated.
struct ReferenceGpu {
  double peak_fp64_gflops = 9700.0;
  double peak_fp32_gflops = 19500.0;
  double achievable_bw_gbs = 1866.0;  ///< bw at f_max after the knee curve
};

/// Build a descriptor from a time budget (exposed so tests and users can
/// define custom workloads the same way the built-in registry does).
WorkloadDescriptor make_descriptor(std::string_view name, Suite suite, Role role,
                                   Category category, const TimeBudget& budget,
                                   const ReferenceGpu& ref = {});

/// All 27 workloads of the paper's Table 2: DGEMM, STREAM, the 19 SPEC ACCEL
/// benchmarks (training), and the six real applications (evaluation).
const std::vector<WorkloadDescriptor>& all();

/// Lookup by case-insensitive name; throws InvalidArgument if unknown.
const WorkloadDescriptor& find(std::string_view name);

/// True if a workload with this name exists.
bool contains(std::string_view name);

/// The 21 training workloads (micro-benchmarks + SPEC ACCEL).
std::vector<WorkloadDescriptor> training_set();

/// The six real-world evaluation applications.
std::vector<WorkloadDescriptor> evaluation_set();

/// Names of every registered workload, in registry order.
std::vector<std::string> names();

}  // namespace gpufreq::workloads
