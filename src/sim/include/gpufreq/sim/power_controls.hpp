#pragma once

#include "gpufreq/sim/gpu_spec.hpp"
#include "gpufreq/util/error.hpp"
#include "gpufreq/workloads/workload.hpp"

namespace gpufreq::sim {

/// Thrown when a simulated run becomes unstable (e.g. undervolted below
/// the stability margin) — the simulator's fault-injection channel.
class SimulatedFault : public Error {
 public:
  explicit SimulatedFault(const std::string& what) : Error(what) {}
};

/// Additional power-management controls beyond application clocks. These
/// model the knobs the paper's conclusion points to as future work
/// ("evaluate the voltage design space") plus the standard data-center
/// alternative to DVFS, power capping (nvidia-smi -pl).
struct PowerControls {
  /// Core-voltage offset in volts (negative = undervolt). Applied on top
  /// of the spec's V/f curve; dynamic power scales with (V + offset)^2.
  double voltage_offset_v = 0.0;

  /// Board power limit in watts; 0 disables capping. When the steady power
  /// at the requested clock exceeds the limit, the device lowers the
  /// effective clock along the grid until it fits (as real boards do).
  double power_limit_w = 0.0;

  /// Enable the first-order thermal model: steady temperature
  /// T = ambient + R_th * P; above the throttle temperature the effective
  /// clock is reduced until the steady temperature fits.
  bool thermal_enabled = false;
};

/// Thermal parameters of a (simulated) board.
struct ThermalSpec {
  double ambient_c = 30.0;
  double resistance_c_per_w = 0.105;  ///< steady-state °C per watt
  double throttle_temp_c = 88.0;      ///< clocks reduced above this
};

/// Maximum stable undervolt (volts, positive number) at a core clock:
/// the headroom shrinks as the clock rises. Offsets below -headroom make
/// runs fault (SimulatedFault).
double undervolt_headroom_v(const GpuSpec& spec, double core_mhz);

/// Validate a controls struct against a spec; throws InvalidArgument for
/// out-of-range values (offset beyond [-0.15, +0.10] V, negative limit).
void validate_controls(const GpuSpec& spec, const PowerControls& controls);

/// Steady-state board temperature for a given power draw.
double steady_temperature_c(const ThermalSpec& thermal, double power_w);

}  // namespace gpufreq::sim
