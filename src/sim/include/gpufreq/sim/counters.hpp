#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "gpufreq/sim/exec_model.hpp"
#include "gpufreq/sim/gpu_spec.hpp"
#include "gpufreq/workloads/workload.hpp"

namespace gpufreq::sim {

/// Stable ids for the CounterSet metrics plus the derived "fp_active"
/// feature. Name->id resolution (metric_id) happens once at configuration
/// time; hot extraction loops read by id so they stay free of string
/// compares and of the unknown-name throw (see the hot-path purity
/// contract, DESIGN.md §8).
enum class MetricId : std::uint8_t {
  kFp64Active,
  kFp32Active,
  kSmAppClock,
  kDramActive,
  kGrEngineActive,
  kGpuUtilization,
  kPowerUsage,
  kSmActive,
  kSmOccupancy,
  kPcieTxBytes,
  kPcieRxBytes,
  kExecTime,
  kFpActive,  ///< derived: fp64_active + fp32_active
};

/// Id for a metric name; throws InvalidArgument for unknown names.
MetricId metric_id(const std::string& metric);

/// The 12 GPU utilization metrics of the paper (§4.1), with DCGM semantics:
/// *_active fields are the fraction of elapsed cycles the unit was busy,
/// clocks are in MHz, PCIe rates in bytes/s, power in watts, time in
/// seconds.
struct CounterSet {
  double fp64_active = 0.0;     ///< (1)  FP64 pipe active fraction
  double fp32_active = 0.0;     ///< (2)  FP32 pipe active fraction
  double sm_app_clock = 0.0;    ///< (3)  applied SM clock (MHz)
  double dram_active = 0.0;     ///< (4)  DRAM interface active fraction
  double gr_engine_active = 0.0;///< (5)  graphics/compute engine active
  double gpu_utilization = 0.0; ///< (6)  coarse utilization (0..1)
  double power_usage = 0.0;     ///< (7)  board power (W)
  double sm_active = 0.0;       ///< (8)  at least one warp resident
  double sm_occupancy = 0.0;    ///< (9)  resident warps / max warps
  double pcie_tx_bytes = 0.0;   ///< (10) host->device rate (bytes/s)
  double pcie_rx_bytes = 0.0;   ///< (11) device->host rate (bytes/s)
  double exec_time = 0.0;       ///< (12) wall time of the run (s)

  /// Combined floating-point activity: the paper's `fp_active` feature
  /// merges the FP64 and FP32 pipe counters.
  double fp_active() const { return fp64_active + fp32_active; }

  /// Metric names, in the order above (CSV headers, MI analysis).
  static const std::array<std::string, 12>& metric_names();

  /// Value by metric name; throws InvalidArgument for unknown names.
  double value(const std::string& metric) const;

  /// Value by id: a total switch — no string compares, never throws for
  /// any MetricId enumerator. Safe inside GPUFREQ_HOT extraction loops.
  double value(MetricId id) const;
};

/// Ground-truth (noise-free) counters for a workload at a core clock.
/// `breakdown` must come from simulate_execution with the same arguments.
CounterSet derive_counters(const GpuSpec& spec, const workloads::WorkloadDescriptor& wl,
                           double core_mhz, const ExecutionBreakdown& breakdown,
                           double voltage_offset_v = 0.0);

}  // namespace gpufreq::sim
