#pragma once

#include "gpufreq/sim/gpu_spec.hpp"
#include "gpufreq/workloads/workload.hpp"

namespace gpufreq::sim {

/// Noise-free decomposition of one execution of a workload at a fixed core
/// clock: the roofline-style time components and their overlap.
struct ExecutionBreakdown {
  double compute_s = 0.0;   ///< FP-pipe-bound time W_c / (peak(f) * eff)
  double memory_s = 0.0;    ///< bandwidth-bound time W_b / (B(f) * eff)
  double latency_s = 0.0;   ///< latency-bound time (weak clock scaling)
  double gpu_s = 0.0;       ///< overlapped GPU-resident time
  double serial_s = 0.0;    ///< clock-independent host/driver time
  double total_s = 0.0;     ///< gpu_s + serial_s

  double gflop = 0.0;       ///< floating-point work executed
  double gbytes = 0.0;      ///< DRAM traffic moved

  /// Achieved FLOP rate (GFLOP/s) over the whole run (Figure 1(d)).
  double achieved_gflops() const { return total_s > 0.0 ? gflop / total_s : 0.0; }

  /// Achieved DRAM bandwidth (GB/s) over the whole run (Figure 1(h)).
  double achieved_bandwidth_gbs() const { return total_s > 0.0 ? gbytes / total_s : 0.0; }
};

/// Order of the smooth-max used to overlap compute/memory/latency phases.
/// Higher = closer to a hard max; 8 leaves a few percent of interference
/// when two components are comparable, which matches real kernels better
/// than either max() or a sum.
inline constexpr double kOverlapOrder = 8.0;

/// Evaluate the noise-free execution-time model (DESIGN.md §2).
ExecutionBreakdown simulate_execution(const GpuSpec& spec,
                                      const workloads::WorkloadDescriptor& wl,
                                      double core_mhz, double input_scale = 1.0);

}  // namespace gpufreq::sim
