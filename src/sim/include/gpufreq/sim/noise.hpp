#pragma once

#include <cstdint>

#include "gpufreq/sim/counters.hpp"
#include "gpufreq/util/rng.hpp"

namespace gpufreq::sim {

/// Measurement/run-to-run variability applied on top of the noise-free
/// model. All components are multiplicative log-normal so that strictly
/// positive quantities stay positive. Sigmas are in relative units.
struct NoiseModel {
  double run_time_sigma = 0.012;    ///< run-to-run wall-time jitter
  double run_power_sigma = 0.015;   ///< run-to-run mean-power jitter
  double sample_power_sigma = 0.03; ///< per-20ms-sample power noise
  double counter_sigma = 0.015;     ///< per-sample counter noise
  double run_counter_sigma = 0.008; ///< run-to-run counter bias
  bool enabled = true;

  /// Noise model with everything disabled (ground truth pass-through).
  static NoiseModel none();

  /// Per-run multiplicative factors, deterministic given the rng stream.
  struct RunJitter {
    double time_factor = 1.0;
    double power_factor = 1.0;
    double counter_factor = 1.0;
  };
  RunJitter sample_run_jitter(Rng& rng) const;

  /// Apply per-sample noise to a counter snapshot (exec_time untouched —
  /// it is a run-level quantity). `phase` in [0,1) adds a small
  /// deterministic within-run activity modulation so time series are not
  /// white noise.
  CounterSet perturb_sample(const CounterSet& truth, const RunJitter& jitter,
                            double phase, Rng& rng) const;
};

}  // namespace gpufreq::sim
