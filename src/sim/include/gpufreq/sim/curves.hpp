#pragma once

#include "gpufreq/sim/gpu_spec.hpp"

namespace gpufreq::sim {

/// Core voltage at the given clock, from the spec's convex V/f curve.
/// f is clamped to [core_min, core_max] first.
double voltage_at(const GpuSpec& spec, double core_mhz);

/// Dynamic-power scaling factor (f / f_max) * ((V(f) + offset) / V_max)^2.
/// In (0, 1] at zero offset; undervolting (negative offset) lowers it.
double dynamic_power_factor(const GpuSpec& spec, double core_mhz,
                            double voltage_offset_v = 0.0);

/// Achievable DRAM bandwidth (GB/s) at the given core clock. Saturating
/// tanh curve with a knee (~900 MHz on GA100), normalized so that the
/// maximum clock reaches peak_bw_gbs.
double bandwidth_at(const GpuSpec& spec, double core_mhz);

/// FP64 / FP32 pipe throughput (GFLOP/s) at the given core clock (linear
/// in frequency).
double fp64_peak_at(const GpuSpec& spec, double core_mhz);
double fp32_peak_at(const GpuSpec& spec, double core_mhz);

/// Mixed-precision throughput for a workload whose FP64 share is
/// `fp64_frac`: harmonic combination of the two pipe rates.
double mixed_fp_peak_at(const GpuSpec& spec, double core_mhz, double fp64_frac);

/// Scaling of latency-bound time: (f_max / f)^latency_exp, >= 1 below f_max.
double latency_time_factor(const GpuSpec& spec, double core_mhz);

}  // namespace gpufreq::sim
