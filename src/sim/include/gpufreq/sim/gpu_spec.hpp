#pragma once

#include <string>
#include <vector>

namespace gpufreq::sim {

/// Static description of a simulated GPU. The presets mirror the paper's
/// Table 1 (NVIDIA GA100 / GV100) plus the physical parameters of the
/// analytic power/performance model the simulator substitutes for real
/// hardware (see DESIGN.md §2).
struct GpuSpec {
  std::string name;          ///< e.g. "GA100"
  std::string architecture;  ///< e.g. "Ampere"

  // --- DVFS design space (Table 1) ------------------------------------
  double core_min_mhz = 210.0;     ///< lowest supported core clock
  double core_max_mhz = 1410.0;    ///< highest supported core clock
  double core_step_mhz = 15.0;     ///< grid step between configurations
  double default_core_mhz = 1410.0;
  double used_min_mhz = 510.0;     ///< below this, the paper excludes configs
  double memory_mhz = 1597.0;      ///< fixed memory clock
  double memory_gb = 80.0;

  // --- Throughput peaks -------------------------------------------------
  double peak_fp64_gflops = 9700.0;   ///< FP64 peak at core_max_mhz
  double peak_fp32_gflops = 19500.0;  ///< FP32 peak at core_max_mhz
  double peak_bw_gbs = 2039.0;        ///< peak DRAM bandwidth (Table 1)
  int sm_count = 108;

  // --- Power model parameters ------------------------------------------
  double tdp_w = 500.0;
  double static_power_w = 45.0;      ///< leakage + board, clock-independent
  double clock_tree_power_w = 40.0;  ///< clock distribution at f_max, V_max
  double sm_dyn_power_w = 445.0;     ///< SM dynamic power at f_max, V_max, u=1
  double mem_power_w = 90.0;         ///< DRAM interface power at dram_active=1
  double pcie_power_w_per_gbps = 0.4;

  // --- Voltage/frequency curve: V(f) = v_min + (v_max - v_min) * x^gamma,
  //     x = (f - core_min) / (core_max - core_min). Convex (gamma > 1):
  //     voltage climbs steeply near the top of the DVFS range, which is what
  //     produces the interior EDP/ED2P optima the paper reports.
  double v_min = 0.72;
  double v_max = 1.08;
  double v_gamma = 2.2;

  // --- Achievable-bandwidth curve: B(f) = peak_bw * tanh(f / bw_knee) /
  //     tanh(core_max / bw_knee). Saturates above the knee (~900 MHz on
  //     GA100, Figure 1(h)).
  double bw_knee_mhz = 900.0;

  // --- Latency scaling: latency-bound time ~ (f_max / f)^latency_exp.
  double latency_exp = 0.35;

  /// Relative SM power cost of an FP32-pipe-active cycle vs an FP64 one.
  double fp32_power_weight = 0.85;

  /// All supported DVFS core frequencies (core_min..core_max, step).
  std::vector<double> supported_frequencies() const;

  /// The configurations actually used by the paper's methodology
  /// (used_min..core_max) — 61 on GA100, 117 on GV100.
  std::vector<double> used_frequencies() const;

  /// Snap an arbitrary frequency onto the supported grid (nearest step,
  /// clamped to [core_min, core_max]).
  double nearest_frequency(double mhz) const;

  /// True if `mhz` is (within tolerance) one of the supported steps.
  bool is_supported(double mhz) const;

  /// Validate internal consistency; throws InvalidArgument on violation.
  void validate() const;

  /// Paper presets (Table 1).
  static GpuSpec ga100();
  static GpuSpec gv100();
};

}  // namespace gpufreq::sim
