#pragma once

#include <cstdint>
#include <vector>

#include "gpufreq/sim/counters.hpp"
#include "gpufreq/sim/exec_model.hpp"
#include "gpufreq/sim/gpu_spec.hpp"
#include "gpufreq/sim/noise.hpp"
#include "gpufreq/sim/power_controls.hpp"
#include "gpufreq/workloads/workload.hpp"

namespace gpufreq::sim {

/// Options for one simulated execution.
struct RunOptions {
  double input_scale = 1.0;        ///< workload input-size multiplier
  int run_index = 0;               ///< repeat index; seeds the run's noise
  double sample_interval_s = 0.02; ///< metric sampling interval (paper: 20 ms)
  std::size_t max_samples = 64;    ///< cap on stored samples (stride-decimated)
  bool collect_samples = true;     ///< keep the per-sample time series
};

/// One timestamped metric snapshot, as the DCGM-like profiler would record.
struct MetricSample {
  double timestamp_s = 0.0;
  CounterSet counters;
};

/// Result of a simulated execution.
struct RunResult {
  double exec_time_s = 0.0;          ///< wall time (noisy if noise enabled)
  double avg_power_w = 0.0;          ///< mean board power over the run
  double energy_j = 0.0;             ///< exec_time_s * avg_power_w
  double achieved_gflops = 0.0;      ///< FLOP work / wall time
  double achieved_bandwidth_gbs = 0.0;
  CounterSet mean_counters;          ///< run-level mean of the sampled metrics
  ExecutionBreakdown breakdown;      ///< noise-free time decomposition
  std::vector<MetricSample> samples; ///< per-interval series (if collected)

  // Power-management outcome (see PowerControls).
  double effective_clock_mhz = 0.0;   ///< clock actually run at
  double steady_temperature_c = 0.0;  ///< first-order thermal estimate
  bool power_capped = false;          ///< clock lowered to honor the limit
  bool thermally_throttled = false;   ///< clock lowered to honor the temp
};

/// A simulated GPU: applies DVFS settings and "executes" workloads against
/// the analytic model, producing DCGM-style metrics with realistic noise.
///
/// Clock semantics follow nvidia-smi/DCGM application clocks: requested
/// frequencies are snapped to the supported grid; out-of-range requests are
/// rejected. Determinism: the run-level noise stream depends only on
/// (device seed, workload name, clock, input scale, run index) so results
/// are reproducible and adding workloads does not perturb existing ones.
class GpuDevice {
 public:
  explicit GpuDevice(GpuSpec spec, std::uint64_t seed = 0xA100'5EEDULL,
                     NoiseModel noise = NoiseModel{});

  const GpuSpec& spec() const { return spec_; }
  const NoiseModel& noise() const { return noise_; }

  /// Current applied SM application clock (MHz).
  double app_clock_mhz() const { return app_clock_mhz_; }

  /// Apply an application clock. Must lie inside the supported range; it is
  /// snapped to the grid. Returns the applied (snapped) value.
  double set_app_clock(double mhz);

  /// Restore the default (maximum) application clock.
  void reset_clocks();

  /// Apply voltage-offset / power-limit / thermal controls (validated).
  /// Runs at an undervolt beyond undervolt_headroom_v() throw
  /// SimulatedFault; a power limit or the thermal model lower the
  /// *effective* clock along the grid, as real boards do.
  void set_power_controls(const PowerControls& controls);
  const PowerControls& power_controls() const { return controls_; }

  /// Thermal parameters used when controls().thermal_enabled is set.
  void set_thermal_spec(const ThermalSpec& thermal) { thermal_ = thermal; }
  const ThermalSpec& thermal_spec() const { return thermal_; }

  /// The clock a run would actually execute at, after applying the power
  /// limit and thermal headroom for this workload (noise-free estimate).
  double effective_clock_for(const workloads::WorkloadDescriptor& wl,
                             double input_scale = 1.0) const;

  /// Execute a workload at the current application clock.
  RunResult run(const workloads::WorkloadDescriptor& wl, const RunOptions& opts = {}) const;

  /// Convenience: set the clock, run, and leave the clock applied.
  RunResult run_at(const workloads::WorkloadDescriptor& wl, double mhz,
                   const RunOptions& opts = {});

 private:
  GpuSpec spec_;
  NoiseModel noise_;
  std::uint64_t seed_;
  double app_clock_mhz_;
  PowerControls controls_;
  ThermalSpec thermal_;
};

}  // namespace gpufreq::sim
