#pragma once

#include "gpufreq/sim/gpu_spec.hpp"
#include "gpufreq/workloads/workload.hpp"

namespace gpufreq::sim {

struct CounterSet;  // counters.hpp (mutual include avoided)

/// Noise-free board power (W) for a workload at a core clock, given its
/// derived utilization counters:
///
///   P = P_static
///     + (P_clock + P_sm * u_sm) * (f/f_max) * (V(f)/V_max)^2
///     + P_mem * dram_active
///     + P_pcie_per_gbps * (tx + rx)
///
/// where u_sm blends warp residency with pipe activity:
///   u_sm = 0.15 * sm_active + 0.85 * (fp64_active + w32 * fp32_active).
///
/// The clock-tree term burns power whenever the GPU is clocked high even at
/// low utilization — that is what gives low-utilization workloads (LSTM)
/// large energy savings with no performance cost, as the paper observes.
double simulate_power(const GpuSpec& spec, const workloads::WorkloadDescriptor& wl,
                      double core_mhz, const CounterSet& counters,
                      double voltage_offset_v = 0.0);

/// SM utilization blend used by simulate_power (exposed for tests).
double sm_power_utilization(const GpuSpec& spec, const CounterSet& counters);

}  // namespace gpufreq::sim
