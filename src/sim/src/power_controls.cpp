#include "gpufreq/sim/power_controls.hpp"

#include <algorithm>

namespace gpufreq::sim {

double undervolt_headroom_v(const GpuSpec& spec, double core_mhz) {
  const double f = std::clamp(core_mhz, spec.core_min_mhz, spec.core_max_mhz);
  const double x = (f - spec.core_min_mhz) / (spec.core_max_mhz - spec.core_min_mhz);
  // ~100 mV of headroom at the bottom of the curve, ~40 mV at the top.
  return 0.100 - 0.060 * x;
}

void validate_controls(const GpuSpec& spec, const PowerControls& controls) {
  (void)spec;
  GPUFREQ_REQUIRE(controls.voltage_offset_v >= -0.150 && controls.voltage_offset_v <= 0.100,
                  "PowerControls: voltage offset outside [-150, +100] mV");
  GPUFREQ_REQUIRE(controls.power_limit_w >= 0.0,
                  "PowerControls: power limit must be non-negative");
}

double steady_temperature_c(const ThermalSpec& thermal, double power_w) {
  GPUFREQ_REQUIRE(power_w >= 0.0, "steady_temperature_c: negative power");
  return thermal.ambient_c + thermal.resistance_c_per_w * power_w;
}

}  // namespace gpufreq::sim
