#include "gpufreq/sim/exec_model.hpp"

#include <cmath>

#include "gpufreq/sim/curves.hpp"
#include "gpufreq/util/error.hpp"

namespace gpufreq::sim {

ExecutionBreakdown simulate_execution(const GpuSpec& spec,
                                      const workloads::WorkloadDescriptor& wl,
                                      double core_mhz, double input_scale) {
  GPUFREQ_REQUIRE(input_scale > 0.0, "simulate_execution: input_scale must be positive");
  GPUFREQ_REQUIRE(core_mhz >= spec.core_min_mhz - 1e-6 && core_mhz <= spec.core_max_mhz + 1e-6,
                  "simulate_execution: clock outside the supported range");

  ExecutionBreakdown eb;
  eb.gflop = wl.total_gflop(input_scale);
  eb.gbytes = wl.total_gbytes(input_scale);

  if (eb.gflop > 0.0) {
    const double rate = mixed_fp_peak_at(spec, core_mhz, wl.fp64_fraction());
    eb.compute_s = eb.gflop / (rate * wl.fp_issue_eff);
  }
  if (eb.gbytes > 0.0) {
    eb.memory_s = eb.gbytes / (bandwidth_at(spec, core_mhz) * wl.mem_eff);
  }
  const double lat = wl.scaled_latency_seconds(input_scale);
  if (lat > 0.0) {
    eb.latency_s = lat * latency_time_factor(spec, core_mhz);
  }

  // Smooth-max overlap of the three GPU-resident components.
  const double p = kOverlapOrder;
  eb.gpu_s = std::pow(std::pow(eb.compute_s, p) + std::pow(eb.memory_s, p) +
                          std::pow(eb.latency_s, p),
                      1.0 / p);
  eb.serial_s = wl.serial_seconds;
  eb.total_s = eb.gpu_s + eb.serial_s;
  return eb;
}

}  // namespace gpufreq::sim
