#include "gpufreq/sim/noise.hpp"

#include <algorithm>
#include <cmath>

namespace gpufreq::sim {

NoiseModel NoiseModel::none() {
  NoiseModel n;
  n.enabled = false;
  return n;
}

NoiseModel::RunJitter NoiseModel::sample_run_jitter(Rng& rng) const {
  RunJitter j;
  if (!enabled) return j;
  j.time_factor = rng.lognormal_jitter(run_time_sigma);
  j.power_factor = rng.lognormal_jitter(run_power_sigma);
  j.counter_factor = rng.lognormal_jitter(run_counter_sigma);
  return j;
}

CounterSet NoiseModel::perturb_sample(const CounterSet& truth, const RunJitter& jitter,
                                      double phase, Rng& rng) const {
  if (!enabled) return truth;
  CounterSet c = truth;

  // Within-run activity modulation: kernels iterate, so utilization breathes
  // a little over the run. Amplitude ~2%, one-and-a-half periods per run.
  const double wave = 1.0 + 0.02 * std::sin(2.0 * 3.141592653589793 * (1.5 * phase + 0.125));

  auto jitter_frac = [&](double v) {
    const double noisy = v * jitter.counter_factor * wave * rng.lognormal_jitter(counter_sigma);
    return std::clamp(noisy, 0.0, 1.0);
  };

  c.fp64_active = jitter_frac(truth.fp64_active);
  c.fp32_active = jitter_frac(truth.fp32_active);
  c.dram_active = jitter_frac(truth.dram_active);
  c.gr_engine_active = jitter_frac(truth.gr_engine_active);
  c.sm_active = jitter_frac(truth.sm_active);
  c.sm_occupancy = jitter_frac(truth.sm_occupancy);
  c.gpu_utilization =
      std::round(jitter_frac(truth.gpu_utilization) * 100.0) / 100.0;
  c.pcie_tx_bytes = truth.pcie_tx_bytes * rng.lognormal_jitter(counter_sigma * 2.0);
  c.pcie_rx_bytes = truth.pcie_rx_bytes * rng.lognormal_jitter(counter_sigma * 2.0);
  c.power_usage =
      truth.power_usage * jitter.power_factor * wave * rng.lognormal_jitter(sample_power_sigma);
  return c;
}

}  // namespace gpufreq::sim
