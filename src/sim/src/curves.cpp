#include "gpufreq/sim/curves.hpp"

#include <algorithm>
#include <cmath>

namespace gpufreq::sim {

double voltage_at(const GpuSpec& spec, double core_mhz) {
  const double f = std::clamp(core_mhz, spec.core_min_mhz, spec.core_max_mhz);
  const double x = (f - spec.core_min_mhz) / (spec.core_max_mhz - spec.core_min_mhz);
  return spec.v_min + (spec.v_max - spec.v_min) * std::pow(x, spec.v_gamma);
}

double dynamic_power_factor(const GpuSpec& spec, double core_mhz,
                            double voltage_offset_v) {
  const double f = std::clamp(core_mhz, spec.core_min_mhz, spec.core_max_mhz);
  const double v = std::max(0.0, voltage_at(spec, f) + voltage_offset_v);
  const double v_ratio = v / spec.v_max;
  return (f / spec.core_max_mhz) * v_ratio * v_ratio;
}

double bandwidth_at(const GpuSpec& spec, double core_mhz) {
  const double f = std::clamp(core_mhz, spec.core_min_mhz, spec.core_max_mhz);
  const double norm = std::tanh(spec.core_max_mhz / spec.bw_knee_mhz);
  return spec.peak_bw_gbs * std::tanh(f / spec.bw_knee_mhz) / norm;
}

double fp64_peak_at(const GpuSpec& spec, double core_mhz) {
  const double f = std::clamp(core_mhz, spec.core_min_mhz, spec.core_max_mhz);
  return spec.peak_fp64_gflops * f / spec.core_max_mhz;
}

double fp32_peak_at(const GpuSpec& spec, double core_mhz) {
  const double f = std::clamp(core_mhz, spec.core_min_mhz, spec.core_max_mhz);
  return spec.peak_fp32_gflops * f / spec.core_max_mhz;
}

double mixed_fp_peak_at(const GpuSpec& spec, double core_mhz, double fp64_frac) {
  const double f64 = std::clamp(fp64_frac, 0.0, 1.0);
  const double inv = f64 / fp64_peak_at(spec, core_mhz) +
                     (1.0 - f64) / fp32_peak_at(spec, core_mhz);
  return 1.0 / inv;
}

double latency_time_factor(const GpuSpec& spec, double core_mhz) {
  const double f = std::clamp(core_mhz, spec.core_min_mhz, spec.core_max_mhz);
  return std::pow(spec.core_max_mhz / f, spec.latency_exp);
}

}  // namespace gpufreq::sim
