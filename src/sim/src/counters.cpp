#include "gpufreq/sim/counters.hpp"

#include <algorithm>
#include <cmath>

#include "gpufreq/sim/curves.hpp"
#include "gpufreq/sim/power_model.hpp"
#include "gpufreq/util/error.hpp"

namespace gpufreq::sim {

const std::array<std::string, 12>& CounterSet::metric_names() {
  static const std::array<std::string, 12> names = {
      "fp64_active",   "fp32_active",   "sm_app_clock", "dram_active",
      "gr_engine_active", "gpu_utilization", "power_usage", "sm_active",
      "sm_occupancy",  "pcie_tx_bytes", "pcie_rx_bytes", "exec_time"};
  return names;
}

MetricId metric_id(const std::string& metric) {
  if (metric == "fp64_active") return MetricId::kFp64Active;
  if (metric == "fp32_active") return MetricId::kFp32Active;
  if (metric == "sm_app_clock") return MetricId::kSmAppClock;
  if (metric == "dram_active") return MetricId::kDramActive;
  if (metric == "gr_engine_active") return MetricId::kGrEngineActive;
  if (metric == "gpu_utilization") return MetricId::kGpuUtilization;
  if (metric == "power_usage") return MetricId::kPowerUsage;
  if (metric == "sm_active") return MetricId::kSmActive;
  if (metric == "sm_occupancy") return MetricId::kSmOccupancy;
  if (metric == "pcie_tx_bytes") return MetricId::kPcieTxBytes;
  if (metric == "pcie_rx_bytes") return MetricId::kPcieRxBytes;
  if (metric == "exec_time") return MetricId::kExecTime;
  if (metric == "fp_active") return MetricId::kFpActive;
  throw InvalidArgument("CounterSet: unknown metric '" + metric + "'");
}

double CounterSet::value(const std::string& metric) const { return value(metric_id(metric)); }

double CounterSet::value(MetricId id) const {
  switch (id) {
    case MetricId::kFp64Active: return fp64_active;
    case MetricId::kFp32Active: return fp32_active;
    case MetricId::kSmAppClock: return sm_app_clock;
    case MetricId::kDramActive: return dram_active;
    case MetricId::kGrEngineActive: return gr_engine_active;
    case MetricId::kGpuUtilization: return gpu_utilization;
    case MetricId::kPowerUsage: return power_usage;
    case MetricId::kSmActive: return sm_active;
    case MetricId::kSmOccupancy: return sm_occupancy;
    case MetricId::kPcieTxBytes: return pcie_tx_bytes;
    case MetricId::kPcieRxBytes: return pcie_rx_bytes;
    case MetricId::kExecTime: return exec_time;
    case MetricId::kFpActive: return fp_active();
  }
  // Out-of-range enum value: contract violation, funneled cold.
  ::gpufreq::detail::fail_invalid("CounterSet: invalid metric id");
}

CounterSet derive_counters(const GpuSpec& spec, const workloads::WorkloadDescriptor& wl,
                           double core_mhz, const ExecutionBreakdown& eb,
                           double voltage_offset_v) {
  GPUFREQ_REQUIRE(eb.total_s > 0.0, "derive_counters: empty execution");
  CounterSet c;
  c.sm_app_clock = core_mhz;
  c.exec_time = eb.total_s;

  // Pipe-active fractions: busy seconds of each pipe over the elapsed time.
  // Busy seconds = work / pipe-rate(f); the serial tail dilutes them, which
  // is what makes low-utilization apps (GROMACS, LSTM) look different from
  // dense kernels even at equal compute balance.
  const double f64_work = wl.gflop_fp64 / (wl.gflop_fp64 + wl.gflop_fp32 + 1e-300) * eb.gflop;
  const double f32_work = eb.gflop - f64_work;
  if (f64_work > 0.0) {
    c.fp64_active = std::min(1.0, f64_work / fp64_peak_at(spec, core_mhz) / eb.total_s);
  }
  if (f32_work > 0.0) {
    c.fp32_active = std::min(1.0, f32_work / fp32_peak_at(spec, core_mhz) / eb.total_s);
  }
  if (eb.gbytes > 0.0) {
    c.dram_active = std::min(1.0, eb.gbytes / bandwidth_at(spec, core_mhz) / eb.total_s);
  }

  const double gpu_frac = eb.gpu_s / eb.total_s;
  c.gr_engine_active = gpu_frac;
  c.sm_active = std::min(1.0, gpu_frac * wl.sm_busy);
  c.sm_occupancy = wl.occupancy;
  // DCGM's coarse utilization counter saturates easily; quantize to 1%.
  c.gpu_utilization = std::round(std::min(1.0, gpu_frac * 1.02) * 100.0) / 100.0;

  c.pcie_tx_bytes = wl.pcie_tx_gbps * 1e9;
  c.pcie_rx_bytes = wl.pcie_rx_gbps * 1e9;

  c.power_usage = simulate_power(spec, wl, core_mhz, c, voltage_offset_v);
  return c;
}

}  // namespace gpufreq::sim
