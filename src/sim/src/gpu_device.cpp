#include "gpufreq/sim/gpu_device.hpp"

#include <algorithm>
#include <cmath>

#include "gpufreq/util/error.hpp"
#include "gpufreq/util/logging.hpp"
#include "gpufreq/util/stats.hpp"

namespace gpufreq::sim {

GpuDevice::GpuDevice(GpuSpec spec, std::uint64_t seed, NoiseModel noise)
    : spec_(std::move(spec)), noise_(noise), seed_(seed),
      app_clock_mhz_(spec_.default_core_mhz) {
  spec_.validate();
}

double GpuDevice::set_app_clock(double mhz) {
  GPUFREQ_REQUIRE(mhz >= spec_.core_min_mhz - 1e-6 && mhz <= spec_.core_max_mhz + 1e-6,
                  "set_app_clock: " + std::to_string(mhz) + " MHz outside [" +
                      std::to_string(spec_.core_min_mhz) + ", " +
                      std::to_string(spec_.core_max_mhz) + "]");
  app_clock_mhz_ = spec_.nearest_frequency(mhz);
  log::debug("sim") << spec_.name << ": app clock set to " << app_clock_mhz_ << " MHz";
  return app_clock_mhz_;
}

void GpuDevice::reset_clocks() { app_clock_mhz_ = spec_.default_core_mhz; }

void GpuDevice::set_power_controls(const PowerControls& controls) {
  validate_controls(spec_, controls);
  controls_ = controls;
}

double GpuDevice::effective_clock_for(const workloads::WorkloadDescriptor& wl,
                                      double input_scale) const {
  double f = app_clock_mhz_;
  if (controls_.power_limit_w <= 0.0 && !controls_.thermal_enabled) return f;

  // Walk down the frequency grid until both the power limit and the
  // thermal budget are honored (noise-free steady-state estimates).
  while (true) {
    const ExecutionBreakdown eb = simulate_execution(spec_, wl, f, input_scale);
    const CounterSet c = derive_counters(spec_, wl, f, eb, controls_.voltage_offset_v);
    const bool over_cap =
        controls_.power_limit_w > 0.0 && c.power_usage > controls_.power_limit_w;
    const bool over_temp =
        controls_.thermal_enabled &&
        steady_temperature_c(thermal_, c.power_usage) > thermal_.throttle_temp_c;
    if (!over_cap && !over_temp) return f;
    const double next = f - spec_.core_step_mhz;
    if (next < spec_.core_min_mhz - 1e-9) return spec_.core_min_mhz;
    f = next;
  }
}

RunResult GpuDevice::run(const workloads::WorkloadDescriptor& wl, const RunOptions& opts) const {
  GPUFREQ_REQUIRE(opts.input_scale > 0.0, "run: input_scale must be positive");
  GPUFREQ_REQUIRE(opts.sample_interval_s > 0.0, "run: sample interval must be positive");
  wl.validate();

  // Undervolting below the stability margin faults the run.
  if (controls_.voltage_offset_v < -undervolt_headroom_v(spec_, app_clock_mhz_)) {
    throw SimulatedFault("run: voltage offset " + std::to_string(controls_.voltage_offset_v) +
                         " V below the stability margin at " +
                         std::to_string(app_clock_mhz_) + " MHz");
  }

  const double effective = effective_clock_for(wl, opts.input_scale);

  RunResult r;
  r.effective_clock_mhz = effective;
  r.breakdown = simulate_execution(spec_, wl, effective, opts.input_scale);
  const CounterSet truth =
      derive_counters(spec_, wl, effective, r.breakdown, controls_.voltage_offset_v);
  r.steady_temperature_c = steady_temperature_c(thermal_, truth.power_usage);
  r.power_capped =
      controls_.power_limit_w > 0.0 && effective < app_clock_mhz_ - 1e-9 &&
      truth.power_usage >= controls_.power_limit_w - spec_.sm_dyn_power_w * 0.05;
  r.thermally_throttled = controls_.thermal_enabled && effective < app_clock_mhz_ - 1e-9 &&
                          !r.power_capped;

  // Deterministic noise stream for this exact (device, workload, clock,
  // scale, run) tuple.
  std::uint64_t label = Rng::hash_string(wl.name.c_str());
  label = Rng::hash_combine(label, Rng::hash_string(spec_.name.c_str()));
  label = Rng::hash_combine(label, static_cast<std::uint64_t>(std::llround(effective * 8.0)));
  label = Rng::hash_combine(label, static_cast<std::uint64_t>(std::llround(opts.input_scale * 4096.0)));
  label = Rng::hash_combine(label, static_cast<std::uint64_t>(opts.run_index));
  Rng rng = Rng(seed_).fork(label);

  const NoiseModel::RunJitter jitter = noise_.sample_run_jitter(rng);
  r.exec_time_s = r.breakdown.total_s * jitter.time_factor;

  // Sample the run at the configured interval; decimate to max_samples so
  // long runs do not produce unbounded series.
  const auto raw_samples = static_cast<std::size_t>(
      std::max(1.0, std::ceil(r.exec_time_s / opts.sample_interval_s)));
  const std::size_t n_samples = std::min(raw_samples, std::max<std::size_t>(1, opts.max_samples));
  const double stride_s = r.exec_time_s / static_cast<double>(n_samples);

  stats::RunningStats power_acc;
  CounterSet mean{};
  if (opts.collect_samples) r.samples.reserve(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const double t = (static_cast<double>(i) + 0.5) * stride_s;
    const double phase = t / r.exec_time_s;
    CounterSet sample = noise_.perturb_sample(truth, jitter, phase, rng);
    sample.exec_time = r.exec_time_s;
    power_acc.add(sample.power_usage);
    mean.fp64_active += sample.fp64_active;
    mean.fp32_active += sample.fp32_active;
    mean.dram_active += sample.dram_active;
    mean.gr_engine_active += sample.gr_engine_active;
    mean.gpu_utilization += sample.gpu_utilization;
    mean.sm_active += sample.sm_active;
    mean.sm_occupancy += sample.sm_occupancy;
    mean.pcie_tx_bytes += sample.pcie_tx_bytes;
    mean.pcie_rx_bytes += sample.pcie_rx_bytes;
    if (opts.collect_samples) r.samples.push_back({t, sample});
  }
  const double inv_n = 1.0 / static_cast<double>(n_samples);
  mean.fp64_active *= inv_n;
  mean.fp32_active *= inv_n;
  mean.dram_active *= inv_n;
  mean.gr_engine_active *= inv_n;
  mean.gpu_utilization *= inv_n;
  mean.sm_active *= inv_n;
  mean.sm_occupancy *= inv_n;
  mean.pcie_tx_bytes *= inv_n;
  mean.pcie_rx_bytes *= inv_n;
  mean.sm_app_clock = effective;
  mean.power_usage = power_acc.mean();
  mean.exec_time = r.exec_time_s;

  r.mean_counters = mean;
  r.avg_power_w = power_acc.mean();
  r.energy_j = r.avg_power_w * r.exec_time_s;
  r.achieved_gflops = r.breakdown.gflop / r.exec_time_s;
  r.achieved_bandwidth_gbs = r.breakdown.gbytes / r.exec_time_s;
  return r;
}

RunResult GpuDevice::run_at(const workloads::WorkloadDescriptor& wl, double mhz,
                            const RunOptions& opts) {
  set_app_clock(mhz);
  return run(wl, opts);
}

}  // namespace gpufreq::sim
