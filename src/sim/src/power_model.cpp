#include "gpufreq/sim/power_model.hpp"

#include <algorithm>

#include "gpufreq/sim/counters.hpp"
#include "gpufreq/sim/curves.hpp"

namespace gpufreq::sim {

double sm_power_utilization(const GpuSpec& spec, const CounterSet& c) {
  const double pipe = c.fp64_active + spec.fp32_power_weight * c.fp32_active;
  return std::min(1.0, 0.15 * c.sm_active + 0.85 * std::min(1.0, pipe));
}

double simulate_power(const GpuSpec& spec, const workloads::WorkloadDescriptor& wl,
                      double core_mhz, const CounterSet& c, double voltage_offset_v) {
  (void)wl;  // power is fully determined by the spec, clock, and counters
  const double dyn = dynamic_power_factor(spec, core_mhz, voltage_offset_v);
  const double u_sm = sm_power_utilization(spec, c);
  const double pcie_gbps = (c.pcie_tx_bytes + c.pcie_rx_bytes) / 1e9;

  double p = spec.static_power_w;
  p += (spec.clock_tree_power_w + spec.sm_dyn_power_w * u_sm) * dyn;
  p += spec.mem_power_w * c.dram_active;
  p += spec.pcie_power_w_per_gbps * pcie_gbps;
  return std::min(p, spec.tdp_w * 1.02);  // boards clamp at the power limit
}

}  // namespace gpufreq::sim
