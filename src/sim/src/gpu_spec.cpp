#include "gpufreq/sim/gpu_spec.hpp"

#include <algorithm>
#include <cmath>

#include "gpufreq/util/error.hpp"

namespace gpufreq::sim {

std::vector<double> GpuSpec::supported_frequencies() const {
  std::vector<double> out;
  const auto steps = static_cast<std::size_t>(
      std::llround((core_max_mhz - core_min_mhz) / core_step_mhz));
  out.reserve(steps + 1);
  for (std::size_t i = 0; i <= steps; ++i) {
    out.push_back(core_min_mhz + static_cast<double>(i) * core_step_mhz);
  }
  return out;
}

std::vector<double> GpuSpec::used_frequencies() const {
  std::vector<double> out;
  for (double f : supported_frequencies()) {
    if (f >= used_min_mhz - 1e-9) out.push_back(f);
  }
  return out;
}

double GpuSpec::nearest_frequency(double mhz) const {
  const double clamped = std::clamp(mhz, core_min_mhz, core_max_mhz);
  const double steps = std::round((clamped - core_min_mhz) / core_step_mhz);
  return std::clamp(core_min_mhz + steps * core_step_mhz, core_min_mhz, core_max_mhz);
}

bool GpuSpec::is_supported(double mhz) const {
  if (mhz < core_min_mhz - 1e-6 || mhz > core_max_mhz + 1e-6) return false;
  return std::abs(nearest_frequency(mhz) - mhz) < 1e-6;
}

void GpuSpec::validate() const {
  GPUFREQ_REQUIRE(!name.empty(), "GpuSpec: name must not be empty");
  GPUFREQ_REQUIRE(core_min_mhz > 0.0 && core_max_mhz > core_min_mhz,
                  "GpuSpec: invalid core frequency range");
  GPUFREQ_REQUIRE(core_step_mhz > 0.0, "GpuSpec: step must be positive");
  GPUFREQ_REQUIRE(used_min_mhz >= core_min_mhz && used_min_mhz <= core_max_mhz,
                  "GpuSpec: used_min out of range");
  GPUFREQ_REQUIRE(is_supported(default_core_mhz), "GpuSpec: default clock not on grid");
  GPUFREQ_REQUIRE(peak_fp64_gflops > 0.0 && peak_fp32_gflops > 0.0,
                  "GpuSpec: peaks must be positive");
  GPUFREQ_REQUIRE(peak_bw_gbs > 0.0, "GpuSpec: bandwidth must be positive");
  GPUFREQ_REQUIRE(tdp_w > 0.0, "GpuSpec: TDP must be positive");
  GPUFREQ_REQUIRE(static_power_w >= 0.0 && clock_tree_power_w >= 0.0 &&
                      sm_dyn_power_w >= 0.0 && mem_power_w >= 0.0,
                  "GpuSpec: negative power parameter");
  GPUFREQ_REQUIRE(v_min > 0.0 && v_max > v_min, "GpuSpec: invalid voltage range");
  GPUFREQ_REQUIRE(v_gamma > 0.0, "GpuSpec: v_gamma must be positive");
  GPUFREQ_REQUIRE(bw_knee_mhz > 0.0, "GpuSpec: bandwidth knee must be positive");
  GPUFREQ_REQUIRE(latency_exp >= 0.0 && latency_exp <= 1.0,
                  "GpuSpec: latency_exp out of [0,1]");
  GPUFREQ_REQUIRE(fp32_power_weight > 0.0 && fp32_power_weight <= 1.0,
                  "GpuSpec: fp32_power_weight out of (0,1]");
}

GpuSpec GpuSpec::ga100() {
  GpuSpec s;
  s.name = "GA100";
  s.architecture = "Ampere";
  s.core_min_mhz = 210.0;
  s.core_max_mhz = 1410.0;
  s.core_step_mhz = 15.0;
  s.default_core_mhz = 1410.0;
  s.used_min_mhz = 510.0;
  s.memory_mhz = 1597.0;
  s.memory_gb = 80.0;
  s.peak_fp64_gflops = 9700.0;
  s.peak_fp32_gflops = 19500.0;
  s.peak_bw_gbs = 2039.0;
  s.sm_count = 108;
  s.tdp_w = 500.0;
  s.static_power_w = 58.0;
  s.clock_tree_power_w = 42.0;
  s.sm_dyn_power_w = 402.0;
  s.mem_power_w = 90.0;
  s.v_min = 0.70;
  s.v_max = 1.08;
  s.v_gamma = 3.2;
  s.bw_knee_mhz = 900.0;
  s.latency_exp = 0.35;
  s.validate();
  return s;
}

GpuSpec GpuSpec::gv100() {
  GpuSpec s;
  s.name = "GV100";
  s.architecture = "Volta";
  s.core_min_mhz = 135.0;
  s.core_max_mhz = 1380.0;
  s.core_step_mhz = 7.5;
  s.default_core_mhz = 1380.0;
  s.used_min_mhz = 510.0;
  s.memory_mhz = 877.0;
  s.memory_gb = 40.0;
  s.peak_fp64_gflops = 7800.0;
  s.peak_fp32_gflops = 15700.0;
  s.peak_bw_gbs = 900.0;
  s.sm_count = 80;
  s.tdp_w = 250.0;
  s.static_power_w = 28.0;
  s.clock_tree_power_w = 22.0;
  s.sm_dyn_power_w = 192.0;
  s.mem_power_w = 50.0;
  s.v_min = 0.70;
  s.v_max = 1.06;
  s.v_gamma = 3.0;
  s.bw_knee_mhz = 820.0;
  s.latency_exp = 0.38;
  s.validate();
  return s;
}

}  // namespace gpufreq::sim
