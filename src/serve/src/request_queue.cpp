#include "gpufreq/serve/request_queue.hpp"

#include <utility>

#include "gpufreq/util/error.hpp"
#include "gpufreq/util/hot_path.hpp"

namespace gpufreq::serve {

bool SweepTicket::done() const {
  GPUFREQ_REQUIRE(slot_ != nullptr, "SweepTicket: empty ticket");
  MutexLock lock(slot_->mutex);
  return slot_->done;
}

const SweepOutcome& SweepTicket::wait() const {
  GPUFREQ_REQUIRE(slot_ != nullptr, "SweepTicket: empty ticket");
  detail::SweepSlot& slot = *slot_;
  MutexLock lock(slot.mutex);
  slot.cv.wait(lock.native(), [&slot] {
    slot.mutex.assert_held();
    return slot.done;
  });
  return slot.outcome;
}

const WorkloadDescriptor& SweepTicket::descriptor() const {
  GPUFREQ_REQUIRE(slot_ != nullptr, "SweepTicket: empty ticket");
  return slot_->descriptor;
}

PriorityRequestQueue::PriorityRequestQueue() : bands_(band_count()) {}

void PriorityRequestQueue::push(std::shared_ptr<detail::SweepSlot> slot) {
  GPUFREQ_HOT("gpufreq::serve::PriorityRequestQueue::push");
  GPUFREQ_REQUIRE(slot != nullptr, "PriorityRequestQueue: null slot");
  Ring& ring = bands_[slot->descriptor.band_index()];
  if (ring.count == ring.slots.size()) grow(ring);
  slot->sequence = next_sequence_++;
  ring.slots[(ring.head + ring.count) & (ring.slots.size() - 1)] = std::move(slot);
  ++ring.count;
  ++size_;
}

std::shared_ptr<detail::SweepSlot> PriorityRequestQueue::pop() {
  GPUFREQ_HOT("gpufreq::serve::PriorityRequestQueue::pop");
  // Highest band index = highest composed priority; FIFO inside the ring.
  for (std::size_t b = bands_.size(); b-- > 0;) {
    Ring& ring = bands_[b];
    if (ring.count == 0) continue;
    std::shared_ptr<detail::SweepSlot> slot = std::move(ring.slots[ring.head]);
    ring.head = (ring.head + 1) & (ring.slots.size() - 1);
    --ring.count;
    --size_;
    return slot;
  }
  return nullptr;
}

std::size_t PriorityRequestQueue::band_size(std::size_t band_index) const {
  GPUFREQ_REQUIRE(band_index < bands_.size(), "PriorityRequestQueue: band out of range");
  return bands_[band_index].count;
}

void PriorityRequestQueue::grow(Ring& ring) {
  const std::size_t cap = ring.slots.empty() ? 16 : ring.slots.size() * 2;
  std::vector<std::shared_ptr<detail::SweepSlot>> next(cap);
  for (std::size_t i = 0; i < ring.count; ++i)
    next[i] = std::move(ring.slots[(ring.head + i) & (ring.slots.size() - 1)]);
  ring.slots = std::move(next);
  ring.head = 0;
}

}  // namespace gpufreq::serve
