#include "gpufreq/serve/sweep_service.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <utility>

#include "gpufreq/nn/kernels/kernel_table.hpp"
#include "gpufreq/util/error.hpp"
#include "gpufreq/util/hot_path.hpp"
#include "gpufreq/util/stats.hpp"
#include "gpufreq/util/thread_pool.hpp"
#include "gpufreq/util/workspace.hpp"

namespace gpufreq::serve {

namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Bitwise equality of the computation inputs (NOT the scheduling tag):
/// two requests coalesce exactly when every input bit matches, which is
/// precisely the condition under which the fused sweep would produce
/// bit-identical rows for both.
bool same_computation(const detail::SweepSlot& a, const detail::SweepSlot& b) {
  if (bits(a.measured_time_at_max_s) != bits(b.measured_time_at_max_s)) return false;
  if (a.frequencies.size() != b.frequencies.size()) return false;
  const sim::CounterSet& x = a.counters;
  const sim::CounterSet& y = b.counters;
  if (bits(x.fp64_active) != bits(y.fp64_active) || bits(x.fp32_active) != bits(y.fp32_active) ||
      bits(x.sm_app_clock) != bits(y.sm_app_clock) || bits(x.dram_active) != bits(y.dram_active) ||
      bits(x.gr_engine_active) != bits(y.gr_engine_active) ||
      bits(x.gpu_utilization) != bits(y.gpu_utilization) ||
      bits(x.power_usage) != bits(y.power_usage) || bits(x.sm_active) != bits(y.sm_active) ||
      bits(x.sm_occupancy) != bits(y.sm_occupancy) ||
      bits(x.pcie_tx_bytes) != bits(y.pcie_tx_bytes) ||
      bits(x.pcie_rx_bytes) != bits(y.pcie_rx_bytes) || bits(x.exec_time) != bits(y.exec_time))
    return false;
  for (std::size_t i = 0; i < a.frequencies.size(); ++i)
    if (bits(a.frequencies[i]) != bits(b.frequencies[i])) return false;
  return true;
}

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void assign(std::vector<double>& dst, std::span<const double> src) {
  // Out-of-line so the (never-taken: outcomes are pre-reserved at submit)
  // growth path stays off the drain loop's static call graph.
  gpufreq::detail::workspace_assign(dst, src.data(), src.data() + src.size());
}

}  // namespace

SweepService::SweepService(const ModelSnapshotHolder& models, sim::GpuSpec spec,
                           ServiceConfig config)
    : models_(models),
      spec_(std::move(spec)),
      config_([&] {
        ServiceConfig c = std::move(config);
        GPUFREQ_REQUIRE(c.max_batch > 0, "SweepService: max_batch must be positive");
        if (c.frequencies.empty()) c.frequencies = spec_.used_frequencies();
        GPUFREQ_REQUIRE(!c.frequencies.empty(), "SweepService: empty default frequency grid");
        return c;
      }()),
      cache_(config_.cache) {
  batch_.reserve(config_.max_batch);
  rep_.reserve(config_.max_batch);
  unique_.reserve(config_.max_batch);
  group_size_.reserve(config_.max_batch);
  probes_.reserve(config_.max_batch);
  hit_.reserve(config_.max_batch);
  miss_of_.reserve(config_.max_batch);
  miss_items_.reserve(config_.max_batch);
  shard_count_ = config_.drain_shards != 0 ? config_.drain_shards : num_threads();
  shard_count_ = std::clamp<std::size_t>(shard_count_, 1, config_.max_batch);
  shard_ws_.resize(shard_count_);
}

SweepService::~SweepService() { stop(); }

SweepTicket SweepService::submit(SweepRequest request) {
  GPUFREQ_REQUIRE(request.measured_time_at_max_s > 0.0,
                  "SweepService: measured time must be positive");
  auto slot = std::make_shared<detail::SweepSlot>();
  slot->descriptor = request.descriptor;
  (void)slot->descriptor.priority();  // validates the band range
  slot->counters = request.counters;
  slot->measured_time_at_max_s = request.measured_time_at_max_s;
  slot->frequencies =
      request.frequencies.empty() ? config_.frequencies : std::move(request.frequencies);
  // Pre-size the outcome so the drain loop's result copies never allocate.
  const std::size_t rows = slot->frequencies.size();
  slot->outcome.frequencies.reserve(rows);
  slot->outcome.power_w.reserve(rows);
  slot->outcome.time_s.reserve(rows);
  slot->outcome.energy_j.reserve(rows);
  slot->enqueued_at = std::chrono::steady_clock::now();

  {
    MutexLock lock(mutex_);
    GPUFREQ_REQUIRE(!stopping_, "SweepService: submit after stop");
    queue_.push(slot);
    ++stats_.submitted;
  }
  cv_.notify_one();
  return SweepTicket(std::move(slot));
}

std::size_t SweepService::drain_once() {
  MutexLock drain(drain_mutex_);
  return drain_locked();
}

std::size_t SweepService::drain_locked() {
  GPUFREQ_HOT("gpufreq::serve::SweepService::drain_locked");
  batch_.clear();
  {
    MutexLock lock(mutex_);
    while (batch_.size() < config_.max_batch && !queue_.empty())
      gpufreq::detail::workspace_push(batch_, queue_.pop());
  }
  if (batch_.empty()) return 0;
  const auto picked_up = std::chrono::steady_clock::now();

  // Epoch-cached snapshot: one atomic load unless a publish() happened.
  const core::OnlinePredictor& predictor = snapshot_.predictor(models_, config_.precision);
  const std::uint64_t epoch = snapshot_.epoch();
  // Cache identity context: the active kernel table pins the backend (its
  // address changes iff set_kernel_backend swaps tables; tables are >= 8
  // aligned so the low bits are free for the precision tag). Folded into
  // every key, so a backend or precision change can never serve a curve
  // computed under a different numeric contract.
  const std::uint64_t context =
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(&nn::kernels::active())) |
      (static_cast<std::uint64_t>(config_.precision) & 0x3u);
  const bool use_cache = cache_.enabled();

  // Coalesce bit-identical requests into shared items, probing the curve
  // cache once per unique item. O(B * U) exact compares; B <= max_batch
  // keeps this far below the GEMM cost, and the scan is deterministic (no
  // hashing on the coalesce side). Hit curves are copied into the
  // representative's outcome immediately: a LookupResult view is only
  // valid until the next insert, and the post-compute inserts below may
  // evict the very entry that just hit.
  rep_.clear();
  unique_.clear();
  group_size_.clear();
  probes_.clear();
  hit_.clear();
  miss_of_.clear();
  miss_items_.clear();
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    detail::SweepSlot& slot = *batch_[i];
    std::size_t u = unique_.size();
    if (config_.coalesce_identical) {
      for (std::size_t j = 0; j < unique_.size(); ++j) {
        if (same_computation(*batch_[unique_[j]], slot)) {
          u = j;
          break;
        }
      }
    }
    gpufreq::detail::workspace_push(rep_, static_cast<std::uint32_t>(u));
    if (u != unique_.size()) {
      ++group_size_[u];
      continue;
    }
    gpufreq::detail::workspace_push(unique_, static_cast<std::uint32_t>(i));
    gpufreq::detail::workspace_push(group_size_, std::uint32_t{1});
    gpufreq::detail::workspace_push(probes_, core::SweepCurveCache::Probe{});
    gpufreq::detail::workspace_push(hit_, std::uint8_t{0});
    gpufreq::detail::workspace_push(miss_of_, std::uint32_t{0});
    if (use_cache) {
      const core::SweepCurveCache::LookupResult r =
          cache_.lookup(slot.counters, slot.measured_time_at_max_s, slot.frequencies, epoch,
                        context, probes_.back());
      if (r.hit) {
        hit_.back() = 1;
        SweepOutcome& out = slot.outcome;
        assign(out.frequencies, r.frequencies);
        assign(out.power_w, r.power_w);
        assign(out.time_s, r.time_s);
        assign(out.energy_j, r.energy_j);
        continue;
      }
    }
    miss_of_.back() = static_cast<std::uint32_t>(miss_items_.size());
    gpufreq::detail::workspace_push(
        miss_items_, core::BatchSweepItem{.counters = &slot.counters,
                                          .measured_time_at_max_s = slot.measured_time_at_max_s,
                                          .frequencies = slot.frequencies});
  }

  // The fused sweep over everything the cache could not answer, sharded
  // across the deterministic pool: shard s computes miss items
  // [s*grain, (s+1)*grain) into its own workspace. Every per-item slice
  // is bitwise identical to an independent predict_sweep (the batch
  // contract is row-local), so any shard partition — including the serial
  // one-shard case — produces identical outcomes.
  const std::size_t n_miss = miss_items_.size();
  if (n_miss > 0) {
    const std::size_t shards = std::min(shard_count_, n_miss);
    shard_grain_ = (n_miss + shards - 1) / shards;
    const std::size_t grain = shard_grain_;
    parallel_for(0, n_miss, grain, [&](std::size_t lo, std::size_t hi) {
      predictor.predict_sweep_batch(
          std::span<const core::BatchSweepItem>(miss_items_.data() + lo, hi - lo), spec_,
          shard_ws_[lo / grain]);
    });
    if (use_cache) {
      for (std::size_t u = 0; u < unique_.size(); ++u) {
        if (hit_[u] != 0) continue;
        const std::size_t m = miss_of_[u];
        const core::BatchSweepWorkspace& sws = shard_ws_[m / grain];
        const std::size_t local = m % grain;
        cache_.insert(probes_[u], batch_[unique_[u]]->frequencies, sws.item_frequencies(local),
                      sws.item_power(local), sws.item_time(local), sws.item_energy(local));
      }
    }
  }

  const auto completed = std::chrono::steady_clock::now();
  const std::size_t served = batch_.size();
  // Account the batch BEFORE flipping any slot's done bit: a waiter that
  // observes its completion must already see it reflected in stats().
  {
    MutexLock lock(mutex_);
    stats_.completed += served;
    ++stats_.batches;
    stats_.unique_items += unique_.size();
    stats_.coalesced += served - unique_.size();
    stats_.max_batch_seen = std::max(stats_.max_batch_seen, served);
    stats_.model_epoch = epoch;
    stats_.cache_hits = cache_.stats().hits;
    stats_.cache_misses = cache_.stats().misses;
    stats_.cache_evictions = cache_.stats().evictions;
  }
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    detail::SweepSlot& slot = *batch_[i];
    const std::size_t u = rep_[i];
    SweepOutcome& out = slot.outcome;
    if (hit_[u] != 0) {
      // The representative's outcome was filled at probe time; coalesced
      // members copy its (bitwise-equal) curves.
      if (i != unique_[u]) {
        const SweepOutcome& src = batch_[unique_[u]]->outcome;
        assign(out.frequencies, std::span<const double>(src.frequencies));
        assign(out.power_w, std::span<const double>(src.power_w));
        assign(out.time_s, std::span<const double>(src.time_s));
        assign(out.energy_j, std::span<const double>(src.energy_j));
      }
    } else {
      const std::size_t m = miss_of_[u];
      const core::BatchSweepWorkspace& sws = shard_ws_[m / shard_grain_];
      const std::size_t local = m % shard_grain_;
      assign(out.frequencies, sws.item_frequencies(local));
      assign(out.power_w, sws.item_power(local));
      assign(out.time_s, sws.item_time(local));
      assign(out.energy_j, sws.item_energy(local));
    }
    out.min_energy_frequency_mhz = out.frequencies[stats::argmin(out.energy_j)];
    out.queue_latency_s = seconds_between(slot.enqueued_at, picked_up);
    out.total_latency_s = seconds_between(slot.enqueued_at, completed);
    out.batch_size = batch_.size();
    out.model_epoch = epoch;
    out.coalesced = group_size_[u] > 1;
    out.cache_hit = hit_[u] != 0;
    {
      MutexLock lock(slot.mutex);
      slot.done = true;
    }
    slot.cv.notify_all();
  }

  batch_.clear();  // drop slot pins promptly (tickets keep theirs)
  return served;
}

void SweepService::start() {
  GPUFREQ_REQUIRE(!worker_.joinable(), "SweepService: already started");
  {
    MutexLock lock(mutex_);
    stopping_ = false;
  }
  worker_ = std::thread([this] { worker_loop(); });
}

void SweepService::stop() {
  if (!worker_.joinable()) return;
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void SweepService::worker_loop() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      cv_.wait(lock.native(), [this] {
        mutex_.assert_held();
        return stopping_ || !queue_.empty();
      });
      if (stopping_ && queue_.empty()) return;
    }
    drain_once();
  }
}

std::size_t SweepService::pending() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

ServiceStats SweepService::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace gpufreq::serve
