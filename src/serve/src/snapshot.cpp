#include "gpufreq/serve/snapshot.hpp"

#include <utility>

#include "gpufreq/util/error.hpp"
#include "gpufreq/util/hot_path.hpp"

namespace gpufreq::serve {

namespace {
void require_trained(const std::shared_ptr<const core::PowerTimeModels>& models,
                     const char* who) {
  GPUFREQ_REQUIRE(models != nullptr, std::string(who) + ": null model snapshot");
  GPUFREQ_REQUIRE(models->power.trained() && models->time.trained(),
                  std::string(who) + ": snapshot models must be trained");
}
}  // namespace

ModelSnapshotHolder::ModelSnapshotHolder(std::shared_ptr<const core::PowerTimeModels> initial) {
  require_trained(initial, "ModelSnapshotHolder");
  MutexLock lock(mutex_);
  current_ = std::move(initial);
}

void ModelSnapshotHolder::publish(std::shared_ptr<const core::PowerTimeModels> next) {
  require_trained(next, "ModelSnapshotHolder::publish");
  MutexLock lock(mutex_);
  current_ = std::move(next);
  // Release: a reader that observes the new epoch and then locks mutex_
  // is guaranteed to copy the new pointer (the store happens under the
  // same mutex); the release/acquire pair orders the epoch probe itself.
  epoch_.fetch_add(1, std::memory_order_release);
}

std::shared_ptr<const core::PowerTimeModels> ModelSnapshotHolder::snapshot() const {
  MutexLock lock(mutex_);
  return current_;
}

const core::OnlinePredictor& SnapshotCache::predictor(const ModelSnapshotHolder& holder,
                                                      nn::Precision precision) {
  GPUFREQ_HOT("gpufreq::serve::SnapshotCache::predictor");
  const std::uint64_t current = holder.epoch();
  if (current != epoch_ || precision != precision_ || !predictor_.has_value()) {
    refresh(holder, precision);
  }
  return *predictor_;
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((cold, noinline))
#endif
void SnapshotCache::refresh(const ModelSnapshotHolder& holder, nn::Precision precision) {
  {
    MutexLock lock(holder.mutex_);
    pinned_ = holder.current_;
    // Re-read under the lock: publish() bumps the epoch under the same
    // mutex, so this pairs the pinned pointer with its exact epoch even
    // if another publish raced the unlocked probe above.
    epoch_ = holder.epoch_.load(std::memory_order_acquire);
  }
  predictor_.emplace(*pinned_, precision);
  precision_ = precision;
}

const core::PowerTimeModels& SnapshotCache::models() const {
  GPUFREQ_REQUIRE(pinned_ != nullptr, "SnapshotCache: no snapshot pinned yet");
  return *pinned_;
}

}  // namespace gpufreq::serve
