#include "gpufreq/serve/workload_descriptor.hpp"

#include "gpufreq/util/error.hpp"

namespace gpufreq::serve {

std::string_view to_string(WorkloadCategory category) {
  switch (category) {
    case WorkloadCategory::kBatch:
      return "batch";
    case WorkloadCategory::kInteractive:
      return "interactive";
    case WorkloadCategory::kSystem:
      return "system";
  }
  GPUFREQ_REQUIRE(false, "WorkloadCategory: invalid enumerator");
}

std::int64_t WorkloadDescriptor::priority() const {
  GPUFREQ_REQUIRE(band >= 0 && band < kBandsPerCategory,
                  "WorkloadDescriptor: band out of range");
  return static_cast<std::int64_t>(category) * kCategoryPriorityFactor +
         static_cast<std::int64_t>(band) * kBandPriorityFactor;
}

std::size_t WorkloadDescriptor::band_index() const {
  GPUFREQ_REQUIRE(band >= 0 && band < kBandsPerCategory,
                  "WorkloadDescriptor: band out of range");
  return static_cast<std::size_t>(category) * static_cast<std::size_t>(kBandsPerCategory) +
         static_cast<std::size_t>(band);
}

}  // namespace gpufreq::serve
