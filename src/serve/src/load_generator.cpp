#include "gpufreq/serve/load_generator.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <utility>

#include "gpufreq/nn/network.hpp"
#include "gpufreq/nn/scaler.hpp"
#include "gpufreq/util/error.hpp"
#include "gpufreq/util/rng.hpp"
#include "gpufreq/util/stats.hpp"

namespace gpufreq::serve {

std::vector<CatalogEntry> make_catalog(std::size_t n, const sim::GpuSpec& spec,
                                       std::uint64_t seed) {
  GPUFREQ_REQUIRE(n > 0, "make_catalog: need at least one entry");
  std::vector<CatalogEntry> catalog;
  catalog.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Forked per entry: entry k is bit-identical across catalogs of any
    // size >= k+1, and across processes (fleet nodes agree on the apps).
    Rng rng = Rng(seed).fork(i);
    CatalogEntry e;
    e.name = "synthetic-" + std::to_string(i);
    sim::CounterSet& c = e.counters;
    c.fp64_active = rng.uniform(0.0, 0.7);
    c.fp32_active = rng.uniform(0.0, 0.7 - c.fp64_active);
    c.sm_app_clock = spec.default_core_mhz;
    c.dram_active = rng.uniform(0.05, 0.9);
    c.gr_engine_active = rng.uniform(0.5, 1.0);
    c.gpu_utilization = rng.uniform(0.5, 1.0);
    c.sm_active = rng.uniform(0.5, 1.0);
    c.sm_occupancy = rng.uniform(0.2, 0.8);
    c.pcie_tx_bytes = rng.uniform(0.0, 2.0e9);
    c.pcie_rx_bytes = rng.uniform(0.0, 2.0e9);
    e.measured_time_at_max_s = rng.uniform(1.0, 20.0);
    c.exec_time = e.measured_time_at_max_s;
    c.power_usage = rng.uniform(0.3, 1.0) * spec.tdp_w;
    catalog.push_back(std::move(e));
  }
  return catalog;
}

std::shared_ptr<const core::PowerTimeModels> fabricate_models(std::uint64_t seed,
                                                              const core::FeatureConfig& features,
                                                              nn::Precision precision) {
  GPUFREQ_REQUIRE(features.dim() > 0, "fabricate_models: empty feature set");
  auto models = std::make_shared<core::PowerTimeModels>();
  models->features = features;

  Rng rng(seed);
  const auto fabricate = [&](core::DnnModel& model, core::Target target, std::uint64_t net_seed) {
    nn::ModelBundle bundle;
    bundle.network = nn::Network(
        features.dim(), nn::Network::paper_architecture(3, 64, nn::Activation::kSelu), net_seed);
    // Fit the scalers on synthetic rows so transforms are well defined.
    nn::Matrix x(64, features.dim());
    for (float& v : x.flat()) v = static_cast<float>(rng.normal());
    bundle.input_scaler.fit(x);
    nn::Matrix y(64, 1);
    for (float& v : y.flat()) v = static_cast<float>(rng.normal(0.7, 0.2));
    bundle.target_scaler.fit(y);
    model.restore(std::move(bundle), target);
    model.prepare_inference(precision);  // restore packed at the session default
  };
  fabricate(models->power, core::Target::kPower, rng.next_u64());
  fabricate(models->time, core::Target::kTime, rng.next_u64());
  return models;
}

LoadReport run_open_loop(SweepService& service, const LoadSpec& spec) {
  GPUFREQ_REQUIRE(spec.rate_hz > 0.0, "run_open_loop: rate must be positive");
  GPUFREQ_REQUIRE(spec.duration_s > 0.0, "run_open_loop: duration must be positive");
  GPUFREQ_REQUIRE(spec.catalog_size > 0, "run_open_loop: empty catalog");
  GPUFREQ_REQUIRE(spec.interactive_frac >= 0.0 && spec.system_frac >= 0.0 &&
                      spec.interactive_frac + spec.system_frac <= 1.0,
                  "run_open_loop: category fractions must be a sub-distribution");
  GPUFREQ_REQUIRE(spec.zipf_s >= 0.0, "run_open_loop: zipf_s must be non-negative");
  GPUFREQ_REQUIRE(service.running(),
                  "run_open_loop: start() the service before generating load");

  const std::vector<CatalogEntry> catalog =
      make_catalog(spec.catalog_size, service.spec(), Rng::hash_combine(spec.seed, 0xCA7A106));

  // Zipf(s) CDF over catalog rank (computed once; empty when uniform).
  // Inverse-CDF sampling keeps the whole arrival schedule a pure function
  // of the seed, exactly like the uniform path.
  std::vector<double> zipf_cdf;
  if (spec.zipf_s > 0.0) {
    zipf_cdf.reserve(catalog.size());
    double total = 0.0;
    for (std::size_t r = 0; r < catalog.size(); ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), spec.zipf_s);
      zipf_cdf.push_back(total);
    }
    for (double& c : zipf_cdf) c /= total;
  }

  // The full arrival schedule (times, apps, descriptors) is drawn up
  // front from the seed: the load is reproducible, only the wall-clock
  // pacing below is physical.
  Rng rng(spec.seed);
  struct Arrival {
    double at_s;
    std::size_t app;
    WorkloadDescriptor descriptor;
  };
  std::vector<Arrival> arrivals;
  for (double t = -std::log(1.0 - rng.uniform()) / spec.rate_hz; t < spec.duration_s;
       t += -std::log(1.0 - rng.uniform()) / spec.rate_hz) {
    Arrival a;
    a.at_s = t;
    a.app = zipf_cdf.empty()
                ? rng.uniform_index(catalog.size())
                : static_cast<std::size_t>(
                      std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), rng.uniform()) -
                      zipf_cdf.begin());
    const double u = rng.uniform();
    a.descriptor.category = u < spec.system_frac ? WorkloadCategory::kSystem
                            : u < spec.system_frac + spec.interactive_frac
                                ? WorkloadCategory::kInteractive
                                : WorkloadCategory::kBatch;
    a.descriptor.band = static_cast<int>(rng.uniform_index(kBandsPerCategory));
    arrivals.push_back(a);
  }

  std::vector<SweepTicket> tickets;
  tickets.reserve(arrivals.size());
  const auto start = std::chrono::steady_clock::now();
  for (const Arrival& a : arrivals) {
    std::this_thread::sleep_until(start + std::chrono::duration<double>(a.at_s));
    SweepRequest req;
    req.descriptor = a.descriptor;
    req.counters = catalog[a.app].counters;
    req.measured_time_at_max_s = catalog[a.app].measured_time_at_max_s;
    tickets.push_back(service.submit(std::move(req)));
  }

  // Drain the tail, then fold latencies per category.
  std::array<std::vector<double>, kWorkloadCategories> latencies_ms;
  for (const SweepTicket& ticket : tickets) {
    const SweepOutcome& outcome = ticket.wait();
    const auto cat = static_cast<std::size_t>(ticket.descriptor().category);
    latencies_ms[cat].push_back(outcome.total_latency_s * 1e3);
  }
  const auto end = std::chrono::steady_clock::now();

  LoadReport report;
  report.submitted = tickets.size();
  report.completed = tickets.size();
  report.wall_s = std::chrono::duration<double>(end - start).count();
  report.throughput_rps = report.wall_s > 0.0 ? static_cast<double>(report.completed) / report.wall_s : 0.0;
  for (std::size_t cat = kWorkloadCategories; cat-- > 0;) {  // most urgent first
    BandLoadStats b;
    b.band = std::string(to_string(static_cast<WorkloadCategory>(cat)));
    b.completed = latencies_ms[cat].size();
    if (!latencies_ms[cat].empty()) {
      b.p50_latency_ms = stats::percentile(latencies_ms[cat], 50.0);
      b.p99_latency_ms = stats::percentile(latencies_ms[cat], 99.0);
      b.p999_latency_ms = stats::percentile(latencies_ms[cat], 99.9);
    }
    report.bands.push_back(std::move(b));
  }
  report.service = service.stats();
  return report;
}

}  // namespace gpufreq::serve
