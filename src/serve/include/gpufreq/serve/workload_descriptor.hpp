#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gpufreq::serve {

/// Scheduling class of a frequency-selection request. Categories are
/// strict: any pending request of a higher category is served before any
/// request of a lower one. The values are the category's urgency rank
/// (higher = more urgent).
enum class WorkloadCategory : std::uint8_t {
  kBatch = 0,        ///< throughput work; tolerates queueing delay
  kInteractive = 1,  ///< operator- or deadline-facing requests
  kSystem = 2,       ///< fleet-controller traffic; always first
};

inline constexpr std::size_t kWorkloadCategories = 3;

/// Bands per category. Within a category, band [0, kBandsPerCategory)
/// orders requests (higher band = more urgent); within a band, service is
/// FIFO by enqueue sequence number.
inline constexpr int kBandsPerCategory = 4;

/// Priority composition factors. The composed priority packs the category
/// into bits [56, 63) and the band into bits [48, 56), leaving the low 48
/// bits free for future sub-band refinement, so integer comparison orders
/// first by category, then by band.
inline constexpr std::int64_t kCategoryPriorityFactor = std::int64_t{1} << 56;
inline constexpr std::int64_t kBandPriorityFactor = std::int64_t{1} << 48;

/// Lower-case category name ("batch", "interactive", "system").
std::string_view to_string(WorkloadCategory category);

/// Scheduling tag carried by every sweep request: which category the
/// requesting workload belongs to and its band within that category.
/// Deliberately mirrors the shape of multi-tenant storage schedulers
/// (category x band -> composed integer priority, FIFO within band).
struct WorkloadDescriptor {
  WorkloadCategory category = WorkloadCategory::kBatch;
  int band = 0;  ///< [0, kBandsPerCategory), higher = more urgent

  /// Composed scheduling priority; strictly increasing in (category, band).
  std::int64_t priority() const;

  /// Dense strict-priority level in [0, kWorkloadCategories *
  /// kBandsPerCategory): category * kBandsPerCategory + band. Used as the
  /// queue's band array index; consistent with priority() ordering.
  std::size_t band_index() const;
};

}  // namespace gpufreq::serve
