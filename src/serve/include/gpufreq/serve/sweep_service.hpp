#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "gpufreq/core/pipeline.hpp"
#include "gpufreq/core/sweep_cache.hpp"
#include "gpufreq/serve/request_queue.hpp"
#include "gpufreq/serve/snapshot.hpp"
#include "gpufreq/sim/gpu_spec.hpp"
#include "gpufreq/util/thread_annotations.hpp"

namespace gpufreq::serve {

/// Tuning knobs for SweepService.
struct ServiceConfig {
  /// Max requests fused into one batched sweep per drain.
  std::size_t max_batch = 128;
  /// Coalesce bit-identical requests within a batch: compute one item,
  /// copy its (bitwise-equal) curves to the duplicates. This is where the
  /// multi-tenant win comes from — fleet nodes running the same app
  /// catalog submit identical (counters, t_max, grid) requests.
  bool coalesce_identical = true;
  /// Default frequency grid for requests that do not carry their own.
  /// Empty selects the GPU's used frequencies (the paper's 61 configs).
  std::vector<double> frequencies;
  /// Inference precision for every drained batch (default: the session
  /// default, GPUFREQ_PRECISION). kInt8 requires the published snapshots'
  /// models to carry int8 packs (DnnModel::prepare_inference(kInt8));
  /// models without them silently run fp32 kernels.
  nn::Precision precision = nn::default_precision();
  /// Sweep-curve cache shape (core::SweepCacheConfig). The default keeps
  /// a 512-entry exact-key cache: repeat requests across drains skip the
  /// GEMM chain entirely and are served bitwise-identical curves.
  /// cache.sets = 0 disables memoization; cache.key_bits > 0 opts into
  /// the quantized-key mode (see SweepCacheConfig).
  core::SweepCacheConfig cache;
  /// Upper bound on the number of workspace shards a drain fans uncached
  /// unique items across on the deterministic thread pool. Each shard
  /// runs its slice through its own predict_sweep_batch, so per-item
  /// results stay bitwise identical to the serial single-workspace drain
  /// (the batch contract is row-local). 0 selects num_threads().
  std::size_t drain_shards = 0;
};

/// Monotonic service counters (snapshot via SweepService::stats()).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;        ///< drains that served >= 1 request
  std::uint64_t unique_items = 0;   ///< items actually occupying GEMM rows
  std::uint64_t coalesced = 0;      ///< requests served by result copy
  std::size_t max_batch_seen = 0;   ///< largest fused batch so far
  std::uint64_t model_epoch = 0;    ///< snapshot epoch of the latest drain
  std::uint64_t cache_hits = 0;       ///< unique items served from the curve cache
  std::uint64_t cache_misses = 0;     ///< unique items that ran the GEMM chain
  std::uint64_t cache_evictions = 0;  ///< valid cache entries overwritten
};

/// Multi-tenant frequency-selection service. Concurrent submitters enqueue
/// SweepRequests tagged with a WorkloadDescriptor; a drain (the background
/// worker started by start(), or explicit drain_once() calls) pops up to
/// max_batch requests in strict priority order, fuses them into one
/// N-item x per-item-grid batched sweep (single GEMM chain per model via
/// OnlinePredictor::predict_sweep_batch), and publishes per-request
/// outcomes that are bitwise identical to N independent predict_sweep
/// calls. Models are read through an epoch-cached snapshot, so a publish()
/// on the ModelSnapshotHolder hot-swaps models between batches without
/// ever blocking the drain on a reader lock in steady state.
///
/// Threading: submit()/stats()/pending() are safe from any thread.
/// drain_once() is internally serialized (drain_mutex_), so explicit
/// drains may race the background worker harmlessly. The drain loop is
/// allocation-free in steady state: every scratch container below is
/// high-water sized, outcome vectors are pre-reserved at submit, and a
/// model swap refresh is itself allocation-free.
class SweepService {
 public:
  SweepService(const ModelSnapshotHolder& models, sim::GpuSpec spec, ServiceConfig config = {});
  ~SweepService();

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Enqueue a request; returns immediately with a waitable ticket.
  SweepTicket submit(SweepRequest request) GPUFREQ_EXCLUDES(mutex_);

  /// Serve one batch synchronously on the calling thread. Returns the
  /// number of requests completed (0 when the queue was empty).
  std::size_t drain_once() GPUFREQ_EXCLUDES(mutex_, drain_mutex_);

  /// Start/stop the background drain worker. stop() (and the destructor)
  /// serves every still-pending request before returning.
  void start();
  void stop();
  bool running() const { return worker_.joinable(); }

  std::size_t pending() const GPUFREQ_EXCLUDES(mutex_);
  ServiceStats stats() const GPUFREQ_EXCLUDES(mutex_);

  const sim::GpuSpec& spec() const { return spec_; }
  const std::vector<double>& default_frequencies() const { return config_.frequencies; }

 private:
  void worker_loop() GPUFREQ_EXCLUDES(mutex_, drain_mutex_);
  std::size_t drain_locked() GPUFREQ_REQUIRES(drain_mutex_) GPUFREQ_EXCLUDES(mutex_);

  const ModelSnapshotHolder& models_;
  const sim::GpuSpec spec_;
  const ServiceConfig config_;

  mutable Mutex mutex_;
  std::condition_variable cv_;  ///< signaled on submit and on stop
  PriorityRequestQueue queue_ GPUFREQ_GUARDED_BY(mutex_);
  ServiceStats stats_ GPUFREQ_GUARDED_BY(mutex_);
  bool stopping_ GPUFREQ_GUARDED_BY(mutex_) = false;

  // Drain scratch, reused across batches (see class comment).
  Mutex drain_mutex_;
  SnapshotCache snapshot_ GPUFREQ_GUARDED_BY(drain_mutex_);
  core::SweepCurveCache cache_ GPUFREQ_GUARDED_BY(drain_mutex_);
  std::vector<std::shared_ptr<detail::SweepSlot>> batch_ GPUFREQ_GUARDED_BY(drain_mutex_);
  std::vector<std::uint32_t> rep_ GPUFREQ_GUARDED_BY(drain_mutex_);      ///< request -> item
  std::vector<std::uint32_t> unique_ GPUFREQ_GUARDED_BY(drain_mutex_);   ///< item -> request
  std::vector<std::uint32_t> group_size_ GPUFREQ_GUARDED_BY(drain_mutex_);
  // Cache bookkeeping per unique item (probe carried from lookup to the
  // post-compute insert; hit flag; miss ordinal into miss_items_).
  std::vector<core::SweepCurveCache::Probe> probes_ GPUFREQ_GUARDED_BY(drain_mutex_);
  std::vector<std::uint8_t> hit_ GPUFREQ_GUARDED_BY(drain_mutex_);
  std::vector<std::uint32_t> miss_of_ GPUFREQ_GUARDED_BY(drain_mutex_);
  std::vector<core::BatchSweepItem> miss_items_ GPUFREQ_GUARDED_BY(drain_mutex_);
  // One workspace per drain shard; shard s computes miss items
  // [s * grain, (s + 1) * grain) of the current drain. Serial drains
  // (one shard) use shard_ws_[0], so the warmed high-water behavior is
  // unchanged from the single-workspace layout.
  std::size_t shard_count_ = 1;
  std::size_t shard_grain_ GPUFREQ_GUARDED_BY(drain_mutex_) = 0;
  std::vector<core::BatchSweepWorkspace> shard_ws_ GPUFREQ_GUARDED_BY(drain_mutex_);

  std::thread worker_;
};

}  // namespace gpufreq::serve
