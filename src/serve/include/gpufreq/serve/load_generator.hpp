#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpufreq/core/models.hpp"
#include "gpufreq/serve/sweep_service.hpp"
#include "gpufreq/sim/gpu_spec.hpp"

namespace gpufreq::serve {

/// One synthetic application: a plausible max-frequency counter snapshot
/// plus the measured wall time, i.e. exactly what the online phase hands
/// the predictor.
struct CatalogEntry {
  std::string name;
  sim::CounterSet counters;
  double measured_time_at_max_s = 0.0;
};

/// Deterministic synthetic application catalog: `n` entries derived only
/// from `seed` and the GPU spec, so every run (and every simulated fleet
/// node) sees bit-identical applications. Two requests for the same entry
/// therefore coalesce in the service.
std::vector<CatalogEntry> make_catalog(std::size_t n, const sim::GpuSpec& spec,
                                       std::uint64_t seed);

/// Fabricate a trained PowerTimeModels pair without running the trainer:
/// paper-architecture networks with seeded random weights, scalers fitted
/// on synthetic data. The predictions are meaningless, but the compute
/// shape, determinism, and bitwise-parity properties are identical to real
/// models — which is what the serve tests, benches, and the load-generator
/// smoke lane need, at millisecond instead of minute startup cost.
/// `precision` controls which inference packs the models carry: kInt8
/// builds the quantized packs on top of fp32, so the snapshot serves
/// predictors of either precision.
std::shared_ptr<const core::PowerTimeModels> fabricate_models(
    std::uint64_t seed, const core::FeatureConfig& features = {},
    nn::Precision precision = nn::default_precision());

/// Shape of the synthetic open-loop load.
struct LoadSpec {
  double rate_hz = 2000.0;       ///< arrival rate (open loop: never adapts)
  double duration_s = 1.0;       ///< submission window
  std::size_t catalog_size = 27; ///< distinct applications arrivals draw from
  double interactive_frac = 0.3; ///< share of interactive arrivals
  double system_frac = 0.1;      ///< share of system arrivals (rest: batch)
  /// Catalog skew: 0 draws applications uniformly (every entry equally
  /// likely); s > 0 draws from a Zipf(s) distribution over catalog rank
  /// (entry 0 most popular, P(rank r) proportional to 1/(r+1)^s). Real
  /// fleets re-query a small hot set every control interval — s in
  /// [0.9, 1.2] reproduces that repeat-heavy regime and is what makes the
  /// sweep-curve cache win measurable end to end.
  double zipf_s = 0.0;
  std::uint64_t seed = 0x10ADu;  ///< arrival-process seed
};

/// Per-category completion latencies.
struct BandLoadStats {
  std::string band;  ///< "system" / "interactive" / "batch"
  std::size_t completed = 0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double p999_latency_ms = 0.0;  ///< tail beyond p99 (cache-miss spikes live here)
};

struct LoadReport {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  double wall_s = 0.0;            ///< submission start -> last completion
  double throughput_rps = 0.0;    ///< completed / wall_s
  std::vector<BandLoadStats> bands;
  ServiceStats service;           ///< service counters after the run
};

/// Open-loop load generator: submits Poisson arrivals at spec.rate_hz for
/// spec.duration_s against a *running* service (start() it first),
/// ignoring completions while submitting — queueing delay is measured, not
/// masked. Applications are drawn from a make_catalog() catalog, uniformly
/// or Zipf-skewed (spec.zipf_s); categories follow the configured mix with
/// a uniform band within the category. Blocks until every request
/// completes, then reports per-band p50/p99/p99.9 latency and aggregate
/// throughput.
LoadReport run_open_loop(SweepService& service, const LoadSpec& spec);

}  // namespace gpufreq::serve
