#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "gpufreq/core/models.hpp"
#include "gpufreq/core/pipeline.hpp"
#include "gpufreq/util/thread_annotations.hpp"

namespace gpufreq::serve {

/// Epoch-stamped holder of the current power/time model pair, for hot
/// model swaps under load.
///
/// Swap protocol: publish() installs a new immutable snapshot under the
/// mutex, then bumps the epoch with release ordering. Readers go through a
/// per-thread SnapshotCache whose steady-state fast path is ONE acquire
/// load of the epoch — no lock, no reference-count traffic. Only when the
/// epoch differs from the cached one does a reader briefly take the mutex
/// to copy the shared_ptr (pinning the new snapshot) and rebuild its
/// predictor. In-flight work keeps using the snapshot it pinned; the old
/// models are destroyed when the last pin drops.
class ModelSnapshotHolder {
 public:
  /// Requires trained power and time models.
  explicit ModelSnapshotHolder(std::shared_ptr<const core::PowerTimeModels> initial);

  ModelSnapshotHolder(const ModelSnapshotHolder&) = delete;
  ModelSnapshotHolder& operator=(const ModelSnapshotHolder&) = delete;

  /// Atomically replace the current snapshot (requires trained models).
  /// Readers observe the change on their next epoch check.
  void publish(std::shared_ptr<const core::PowerTimeModels> next) GPUFREQ_EXCLUDES(mutex_);

  /// Pin and return the current snapshot (locks; prefer SnapshotCache on
  /// hot paths).
  std::shared_ptr<const core::PowerTimeModels> snapshot() const GPUFREQ_EXCLUDES(mutex_);

  /// Monotonic publication counter; starts at 0 for the initial snapshot.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  friend class SnapshotCache;

  mutable Mutex mutex_;
  std::shared_ptr<const core::PowerTimeModels> current_ GPUFREQ_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> epoch_{0};
};

/// Per-reader-thread cache of a pinned snapshot plus the OnlinePredictor
/// built over it. NOT thread-safe — one instance per reader thread. The
/// refresh path itself is allocation-free (shared_ptr copy + predictor
/// rebuild), so a model swap never perturbs a zero-allocation drain loop.
class SnapshotCache {
 public:
  /// Predictor over the holder's current snapshot, running at `precision`.
  /// Steady state (epoch AND precision unchanged): a single atomic load,
  /// wait-free; a change in either rebuilds the predictor. The reference
  /// is valid until the next predictor() call on this cache.
  const core::OnlinePredictor& predictor(const ModelSnapshotHolder& holder,
                                         nn::Precision precision = nn::Precision::kFp32);

  /// The models backing the last predictor() result (requires one).
  const core::PowerTimeModels& models() const;

  /// Epoch of the pinned snapshot (~0 when nothing is pinned yet).
  std::uint64_t epoch() const { return epoch_; }

 private:
  /// Cold refresh: pin the holder's current snapshot and rebuild the
  /// predictor. Out-of-line so predictor()'s steady-state fast path stays
  /// free of lock/refcount code (see the hot-path purity contract,
  /// DESIGN.md §8).
  void refresh(const ModelSnapshotHolder& holder, nn::Precision precision);

  std::shared_ptr<const core::PowerTimeModels> pinned_;
  std::optional<core::OnlinePredictor> predictor_;
  std::uint64_t epoch_ = ~std::uint64_t{0};
  nn::Precision precision_ = nn::Precision::kFp32;
};

}  // namespace gpufreq::serve
