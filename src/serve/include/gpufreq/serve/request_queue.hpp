#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpufreq/serve/workload_descriptor.hpp"
#include "gpufreq/sim/counters.hpp"
#include "gpufreq/util/thread_annotations.hpp"

namespace gpufreq::serve {

/// A "pick a frequency for this application" request: the application's
/// max-frequency counter snapshot and wall time (the online phase's single
/// measured execution) plus its scheduling tag.
struct SweepRequest {
  WorkloadDescriptor descriptor;
  sim::CounterSet counters;             ///< counters measured at f_max
  double measured_time_at_max_s = 0.0;  ///< wall time of that execution
  /// Frequency grid to sweep (any order; the service sorts ascending).
  /// Empty means "use the service's default grid".
  std::vector<double> frequencies;
};

/// Completed sweep results plus service-side observability for one request.
/// The per-config curves are bitwise identical to what an independent
/// OnlinePredictor::predict_sweep of the same request would produce.
struct SweepOutcome {
  std::vector<double> frequencies;  ///< ascending MHz
  std::vector<double> power_w;      ///< clamped board power per config
  std::vector<double> time_s;       ///< clamped execution time per config
  std::vector<double> energy_j;     ///< power * time (Equation 8)

  /// The service's pick: the grid frequency minimizing predicted energy.
  double min_energy_frequency_mhz = 0.0;

  double queue_latency_s = 0.0;  ///< enqueue -> drain pickup
  double total_latency_s = 0.0;  ///< enqueue -> results published
  std::size_t batch_size = 0;    ///< requests fused in the serving drain
  std::uint64_t model_epoch = 0; ///< snapshot epoch that served the request
  /// True when the request shared a computation with a bit-identical
  /// request in the same batch instead of occupying its own GEMM rows.
  bool coalesced = false;
  /// True when the curves came from the sweep-curve cache (a prior
  /// drain's computation at the same model epoch) instead of a fresh
  /// GEMM chain. Exact-key hits are bitwise-identical to recompute.
  bool cache_hit = false;
};

namespace detail {

/// Shared state between a submitter and the drain thread. The request
/// fields are immutable once enqueued; `outcome` is written by the drain
/// thread strictly before `done` flips under `mutex`, so any reader that
/// observed done == true may read it without further synchronization.
struct SweepSlot {
  // --- immutable after submit -----------------------------------------
  WorkloadDescriptor descriptor;
  sim::CounterSet counters;
  double measured_time_at_max_s = 0.0;
  std::vector<double> frequencies;  ///< owned copy, as submitted
  std::uint64_t sequence = 0;       ///< FIFO tiebreak within a band
  std::chrono::steady_clock::time_point enqueued_at{};

  // --- completion handshake -------------------------------------------
  Mutex mutex;
  std::condition_variable cv;
  bool done GPUFREQ_GUARDED_BY(mutex) = false;
  SweepOutcome outcome;  ///< published by the done flip (see above)
};

}  // namespace detail

/// Handle returned by SweepService::submit. Cheap to copy; outlives the
/// service's interest in the request (the slot is shared).
class SweepTicket {
 public:
  SweepTicket() = default;

  bool valid() const { return slot_ != nullptr; }

  /// Non-blocking completion poll.
  bool done() const;

  /// Block until the request completes, then return its results. The
  /// reference stays valid for the lifetime of this ticket (or any copy).
  const SweepOutcome& wait() const;

  /// Scheduling tag the request was submitted with.
  const WorkloadDescriptor& descriptor() const;

 private:
  friend class SweepService;
  explicit SweepTicket(std::shared_ptr<detail::SweepSlot> slot) : slot_(std::move(slot)) {}

  std::shared_ptr<detail::SweepSlot> slot_;
};

/// Priority-banded FIFO of pending sweep requests. Requests are bucketed
/// by WorkloadDescriptor::band_index(); pop() serves the highest non-empty
/// band, FIFO within the band (sequence numbers assigned at push). This is
/// the banded equivalent of ordering by the composed integer priority with
/// an enqueue-sequence tiebreak, with O(#bands) worst-case pop and no
/// comparison heap.
///
/// NOT internally synchronized: SweepService accesses it under its own
/// mutex (the member is GPUFREQ_GUARDED_BY there).
class PriorityRequestQueue {
 public:
  PriorityRequestQueue();

  /// Enqueue; assigns the slot's FIFO sequence number. Amortized
  /// allocation-free: each band's ring only reallocates when it outgrows
  /// its high-water capacity.
  void push(std::shared_ptr<detail::SweepSlot> slot);

  /// Dequeue the highest-priority pending request (nullptr when empty).
  /// Never allocates.
  std::shared_ptr<detail::SweepSlot> pop();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pending requests in one strict-priority band (band_index order).
  std::size_t band_size(std::size_t band_index) const;

  static constexpr std::size_t band_count() {
    return kWorkloadCategories * static_cast<std::size_t>(kBandsPerCategory);
  }

 private:
  /// Power-of-two ring buffer; grows by doubling, pops never free.
  struct Ring {
    std::vector<std::shared_ptr<detail::SweepSlot>> slots;
    std::size_t head = 0;
    std::size_t count = 0;
  };

  static void grow(Ring& ring);

  std::vector<Ring> bands_;  ///< index = WorkloadDescriptor::band_index()
  std::uint64_t next_sequence_ = 0;
  std::size_t size_ = 0;
};

}  // namespace gpufreq::serve
