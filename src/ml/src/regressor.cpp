#include "gpufreq/ml/regressor.hpp"

#include "gpufreq/ml/boosting.hpp"
#include "gpufreq/ml/forest.hpp"
#include "gpufreq/ml/linear.hpp"
#include "gpufreq/ml/svr.hpp"
#include "gpufreq/util/error.hpp"

namespace gpufreq::ml {

std::vector<double> Regressor::predict(const nn::Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict_one(x.row(i)));
  return out;
}

std::unique_ptr<Regressor> make_regressor(const std::string& name) {
  if (name == "mlr") return std::make_unique<LinearRegressor>();
  if (name == "rfr") return std::make_unique<RandomForestRegressor>();
  if (name == "xgbr") return std::make_unique<GradientBoostingRegressor>();
  if (name == "svr") return std::make_unique<SvrRegressor>();
  throw InvalidArgument("make_regressor: unknown learner '" + name + "'");
}

namespace detail {
void check_fit_args(const nn::Matrix& x, const std::vector<double>& y, const char* who) {
  GPUFREQ_REQUIRE(x.rows() > 0, std::string(who) + ": empty training set");
  GPUFREQ_REQUIRE(x.rows() == y.size(), std::string(who) + ": row/target count mismatch");
  GPUFREQ_REQUIRE(x.cols() > 0, std::string(who) + ": no features");
}
}  // namespace detail

}  // namespace gpufreq::ml
