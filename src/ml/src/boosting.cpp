#include "gpufreq/ml/boosting.hpp"

#include <numeric>

#include "gpufreq/util/error.hpp"

namespace gpufreq::ml {

GradientBoostingRegressor::GradientBoostingRegressor(Config config) : config_(config) {
  GPUFREQ_REQUIRE(config_.n_rounds > 0, "GradientBoostingRegressor: n_rounds must be positive");
  GPUFREQ_REQUIRE(config_.learning_rate > 0.0 && config_.learning_rate <= 1.0,
                  "GradientBoostingRegressor: learning_rate out of (0,1]");
  GPUFREQ_REQUIRE(config_.subsample > 0.0 && config_.subsample <= 1.0,
                  "GradientBoostingRegressor: subsample out of (0,1]");
}

void GradientBoostingRegressor::fit(const nn::Matrix& x, const std::vector<double>& y) {
  detail::check_fit_args(x, y, "GradientBoostingRegressor::fit");
  trees_.clear();
  trees_.reserve(config_.n_rounds);

  base_ = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(y.size());
  std::vector<double> residual(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - base_;

  Rng rng(config_.seed);
  const auto n_sub = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.subsample * static_cast<double>(x.rows())));
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});

  for (std::size_t round = 0; round < config_.n_rounds; ++round) {
    // Sample rows without replacement (partial Fisher-Yates).
    for (std::size_t i = 0; i < n_sub; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.uniform_index(rows.size() - i));
      std::swap(rows[i], rows[j]);
    }
    std::vector<std::size_t> sub(rows.begin(), rows.begin() + static_cast<std::ptrdiff_t>(n_sub));

    trees_.emplace_back(config_.tree, rng.next_u64());
    trees_.back().fit_rows(x, residual, sub);

    for (std::size_t i = 0; i < y.size(); ++i) {
      residual[i] -= config_.learning_rate * trees_.back().predict_one(x.row(i));
    }
  }
  fitted_ = true;
}

double GradientBoostingRegressor::predict_one(std::span<const float> x) const {
  GPUFREQ_REQUIRE(fitted(), "GradientBoostingRegressor: not fitted");
  double s = base_;
  for (const auto& tree : trees_) s += config_.learning_rate * tree.predict_one(x);
  return s;
}

}  // namespace gpufreq::ml
