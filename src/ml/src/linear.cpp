#include "gpufreq/ml/linear.hpp"

#include <cmath>

#include "gpufreq/util/error.hpp"

namespace gpufreq::ml {

namespace {
/// Solve the symmetric positive-definite system A w = b in place via
/// Gaussian elimination with partial pivoting (d is tiny: features + 1).
std::vector<double> solve_dense(std::vector<std::vector<double>> a, std::vector<double> b) {
  const std::size_t d = b.size();
  for (std::size_t col = 0; col < d; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < d; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    GPUFREQ_REQUIRE(std::abs(a[col][col]) > 1e-300, "LinearRegressor: singular system");
    for (std::size_t r = col + 1; r < d; ++r) {
      const double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c < d; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> w(d, 0.0);
  for (std::size_t i = d; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < d; ++j) s -= a[i][j] * w[j];
    w[i] = s / a[i][i];
  }
  return w;
}
}  // namespace

void LinearRegressor::fit(const nn::Matrix& x, const std::vector<double>& y) {
  detail::check_fit_args(x, y, "LinearRegressor::fit");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols() + 1;  // + intercept column

  // Normal equations on the augmented design matrix: (X^T X + rI) w = X^T y.
  std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = x.row(i);
    for (std::size_t a = 0; a < d; ++a) {
      const double xa = a < x.cols() ? static_cast<double>(row[a]) : 1.0;
      for (std::size_t b = a; b < d; ++b) {
        const double xb = b < x.cols() ? static_cast<double>(row[b]) : 1.0;
        xtx[a][b] += xa * xb;
      }
      xty[a] += xa * y[i];
    }
  }
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtx[a][b] = xtx[b][a];
    xtx[a][a] += ridge_;
  }

  const std::vector<double> w = solve_dense(std::move(xtx), std::move(xty));
  coef_.assign(w.begin(), w.end() - 1);
  intercept_ = w.back();
}

double LinearRegressor::predict_one(std::span<const float> x) const {
  GPUFREQ_REQUIRE(fitted(), "LinearRegressor: not fitted");
  GPUFREQ_REQUIRE(x.size() == coef_.size(), "LinearRegressor: feature width mismatch");
  double s = intercept_;
  for (std::size_t i = 0; i < x.size(); ++i) s += coef_[i] * static_cast<double>(x[i]);
  return s;
}

}  // namespace gpufreq::ml
