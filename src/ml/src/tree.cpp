#include "gpufreq/ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gpufreq/util/error.hpp"

namespace gpufreq::ml {

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  GPUFREQ_REQUIRE(config_.max_depth > 0, "tree: max_depth must be positive");
  GPUFREQ_REQUIRE(config_.min_samples_leaf > 0, "tree: min_samples_leaf must be positive");
}

void DecisionTreeRegressor::fit(const nn::Matrix& x, const std::vector<double>& y) {
  detail::check_fit_args(x, y, "DecisionTreeRegressor::fit");
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  fit_rows(x, y, rows);
}

void DecisionTreeRegressor::fit_rows(const nn::Matrix& x, const std::vector<double>& y,
                                     const std::vector<std::size_t>& rows) {
  detail::check_fit_args(x, y, "DecisionTreeRegressor::fit_rows");
  GPUFREQ_REQUIRE(!rows.empty(), "DecisionTreeRegressor: no rows to fit");
  nodes_.clear();
  nodes_.reserve(2 * rows.size());
  std::vector<std::size_t> work = rows;
  Rng rng(seed_);
  build(x, y, work, 0, work.size(), 0, rng);
}

std::int32_t DecisionTreeRegressor::build(const nn::Matrix& x, const std::vector<double>& y,
                                          std::vector<std::size_t>& rows, std::size_t begin,
                                          std::size_t end, std::size_t depth, Rng& rng) {
  const std::size_t n = end - begin;
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += y[rows[i]];
  const double mean = sum / static_cast<double>(n);

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].value = mean;

  if (depth >= config_.max_depth || n < config_.min_samples_split) return node_id;

  // Choose the candidate feature subset (all by default; forests restrict).
  const std::size_t d = x.cols();
  std::vector<std::size_t> feats(d);
  std::iota(feats.begin(), feats.end(), std::size_t{0});
  std::size_t n_feats = d;
  if (config_.max_features > 0 && config_.max_features < d) {
    for (std::size_t i = 0; i < config_.max_features; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.uniform_index(d - i));
      std::swap(feats[i], feats[j]);
    }
    n_feats = config_.max_features;
  }

  // Exact best split by variance reduction: sort rows by the feature and
  // scan prefix sums.
  int best_feature = -1;
  float best_threshold = 0.0f;
  double best_score = 0.0;  // SSE reduction; must be strictly positive
  std::vector<std::size_t> sorted(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                                  rows.begin() + static_cast<std::ptrdiff_t>(end));
  std::vector<std::size_t> best_sorted;

  for (std::size_t fi = 0; fi < n_feats; ++fi) {
    const std::size_t f = feats[fi];
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) { return x(a, f) < x(b, f); });
    double left_sum = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_sum += y[sorted[i]];
      // No split between equal feature values.
      if (x(sorted[i], f) >= x(sorted[i + 1], f)) continue;
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < config_.min_samples_leaf || nr < config_.min_samples_leaf) continue;
      const double right_sum = sum - left_sum;
      // SSE reduction = sum_l^2/n_l + sum_r^2/n_r - sum^2/n (constant term
      // dropped from the comparison would change with n, so keep it).
      const double score = left_sum * left_sum / static_cast<double>(nl) +
                           right_sum * right_sum / static_cast<double>(nr) -
                           sum * sum / static_cast<double>(n);
      if (score > best_score + 1e-12) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5f * (x(sorted[i], f) + x(sorted[i + 1], f));
        best_sorted = sorted;
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition rows[begin:end) by the chosen split, preserving the sorted
  // order found for the winning feature.
  std::size_t mid = begin;
  for (std::size_t i = 0; i < n; ++i) {
    rows[begin + i] = best_sorted[i];
  }
  for (std::size_t i = begin; i < end; ++i) {
    if (x(rows[i], static_cast<std::size_t>(best_feature)) <= best_threshold) {
      ++mid;
    } else {
      break;
    }
  }

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const std::int32_t left = build(x, y, rows, begin, mid, depth + 1, rng);
  nodes_[node_id].left = left;
  const std::int32_t right = build(x, y, rows, mid, end, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTreeRegressor::predict_one(std::span<const float> x) const {
  GPUFREQ_REQUIRE(fitted(), "DecisionTreeRegressor: not fitted");
  std::int32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[cur].feature);
    GPUFREQ_REQUIRE(f < x.size(), "DecisionTreeRegressor: feature width mismatch");
    cur = x[f] <= nodes_[cur].threshold ? nodes_[cur].left : nodes_[cur].right;
  }
  return nodes_[cur].value;
}

std::size_t DecisionTreeRegressor::depth() const {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (nodes_[id].feature >= 0) {
      stack.push_back({nodes_[id].left, d + 1});
      stack.push_back({nodes_[id].right, d + 1});
    }
  }
  return best;
}

}  // namespace gpufreq::ml
