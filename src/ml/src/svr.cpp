#include "gpufreq/ml/svr.hpp"

#include <algorithm>
#include <cmath>

#include "gpufreq/util/error.hpp"

namespace gpufreq::ml {

SvrRegressor::SvrRegressor(Config config) : config_(config) {
  GPUFREQ_REQUIRE(config_.c > 0.0, "SvrRegressor: C must be positive");
  GPUFREQ_REQUIRE(config_.epsilon >= 0.0, "SvrRegressor: epsilon must be non-negative");
  GPUFREQ_REQUIRE(config_.max_iters > 0, "SvrRegressor: max_iters must be positive");
  GPUFREQ_REQUIRE(config_.max_train_rows >= 2, "SvrRegressor: need at least two rows");
}

double SvrRegressor::kernel(std::span<const float> a, std::span<const float> b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    d2 += d * d;
  }
  // +1 absorbs the bias term (see class comment).
  return std::exp(-gamma_eff_ * d2) + 1.0;
}

void SvrRegressor::fit(const nn::Matrix& x, const std::vector<double>& y) {
  detail::check_fit_args(x, y, "SvrRegressor::fit");

  // Deterministic subsample if the problem is too large for O(n^2) kernels.
  std::vector<std::size_t> rows;
  if (x.rows() > config_.max_train_rows) {
    Rng rng(config_.seed);
    auto perm = rng.permutation(x.rows());
    rows.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(config_.max_train_rows));
    std::sort(rows.begin(), rows.end());
  } else {
    rows.resize(x.rows());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  }
  const std::size_t n = rows.size();
  const std::size_t d = x.cols();

  support_x_.resize(n, d);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = x.row(rows[i]);
    std::copy(src.begin(), src.end(), support_x_.row(i).begin());
    ys[i] = y[rows[i]];
  }

  // RBF width: sklearn's "scale" heuristic 1 / (d * var(X)).
  if (config_.gamma > 0.0) {
    gamma_eff_ = config_.gamma;
  } else {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < d; ++j) mean += static_cast<double>(support_x_(i, j));
    }
    mean /= static_cast<double>(n * d);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        const double dd = static_cast<double>(support_x_(i, j)) - mean;
        var += dd * dd;
      }
    }
    var /= static_cast<double>(n * d);
    gamma_eff_ = var > 1e-12 ? 1.0 / (static_cast<double>(d) * var) : 1.0;
  }

  // Precompute the (augmented) kernel matrix.
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(support_x_.row(i), support_x_.row(j));
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }

  // Cyclic coordinate descent on the dual. f_i = sum_j beta_j K_ij tracks
  // the current prediction of every training point.
  beta_.assign(n, 0.0);
  std::vector<double> f(n, 0.0);
  for (std::size_t pass = 0; pass < config_.max_iters; ++pass) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double kii = k[i * n + i];
      const double resid = ys[i] - (f[i] - beta_[i] * kii);  // leave-one-out residual
      // Exact minimizer of the 1-D subproblem: soft-threshold by epsilon,
      // scale by K_ii, clip to the box.
      double target;
      if (resid > config_.epsilon) {
        target = (resid - config_.epsilon) / kii;
      } else if (resid < -config_.epsilon) {
        target = (resid + config_.epsilon) / kii;
      } else {
        target = 0.0;
      }
      target = std::clamp(target, -config_.c, config_.c);
      const double delta = target - beta_[i];
      if (delta != 0.0) {
        const double* ki = &k[i * n];
        for (std::size_t j = 0; j < n; ++j) f[j] += delta * ki[j];
        beta_[i] = target;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < config_.tol) break;
  }
}

double SvrRegressor::predict_one(std::span<const float> x) const {
  GPUFREQ_REQUIRE(fitted(), "SvrRegressor: not fitted");
  GPUFREQ_REQUIRE(x.size() == support_x_.cols(), "SvrRegressor: feature width mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < support_x_.rows(); ++i) {
    if (beta_[i] == 0.0) continue;
    s += beta_[i] * kernel(x, support_x_.row(i));
  }
  return s;
}

std::size_t SvrRegressor::support_vector_count() const {
  std::size_t c = 0;
  for (double b : beta_) c += std::abs(b) > 1e-8 ? 1 : 0;
  return c;
}

}  // namespace gpufreq::ml
