#include "gpufreq/ml/forest.hpp"

#include "gpufreq/util/error.hpp"
#include "gpufreq/util/thread_pool.hpp"

namespace gpufreq::ml {

RandomForestRegressor::RandomForestRegressor(Config config) : config_(config) {
  GPUFREQ_REQUIRE(config_.n_trees > 0, "RandomForestRegressor: n_trees must be positive");
  GPUFREQ_REQUIRE(config_.bootstrap_fraction > 0.0 && config_.bootstrap_fraction <= 1.0,
                  "RandomForestRegressor: bootstrap fraction out of (0,1]");
}

void RandomForestRegressor::fit(const nn::Matrix& x, const std::vector<double>& y) {
  detail::check_fit_args(x, y, "RandomForestRegressor::fit");
  const auto n_draw = static_cast<std::size_t>(
      config_.bootstrap_fraction * static_cast<double>(x.rows()));
  const std::size_t draw_count = std::max<std::size_t>(1, n_draw);

  // Each tree gets an independent stream forked from the forest seed, so
  // the bootstrap draw and the tree's own feature subsampling depend only
  // on (seed, tree index). Trees can then fit in any order — serial and
  // parallel runs grow bit-identical forests.
  const Rng root(config_.seed);
  trees_.clear();
  trees_.reserve(config_.n_trees);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(config_.n_trees);
  for (std::size_t t = 0; t < config_.n_trees; ++t) {
    tree_rngs.push_back(root.fork(t));
    trees_.emplace_back(config_.tree, tree_rngs.back().next_u64());
  }

  parallel_for(0, config_.n_trees, 1, [&](std::size_t lo, std::size_t hi) {
    std::vector<std::size_t> rows(draw_count);
    for (std::size_t t = lo; t < hi; ++t) {
      Rng& rng = tree_rngs[t];
      for (auto& r : rows) r = static_cast<std::size_t>(rng.uniform_index(x.rows()));
      trees_[t].fit_rows(x, y, rows);
    }
  });
}

double RandomForestRegressor::predict_one(std::span<const float> x) const {
  GPUFREQ_REQUIRE(fitted(), "RandomForestRegressor: not fitted");
  double s = 0.0;
  for (const auto& tree : trees_) s += tree.predict_one(x);
  return s / static_cast<double>(trees_.size());
}

}  // namespace gpufreq::ml
