#include "gpufreq/ml/forest.hpp"

#include "gpufreq/util/error.hpp"

namespace gpufreq::ml {

RandomForestRegressor::RandomForestRegressor(Config config) : config_(config) {
  GPUFREQ_REQUIRE(config_.n_trees > 0, "RandomForestRegressor: n_trees must be positive");
  GPUFREQ_REQUIRE(config_.bootstrap_fraction > 0.0 && config_.bootstrap_fraction <= 1.0,
                  "RandomForestRegressor: bootstrap fraction out of (0,1]");
}

void RandomForestRegressor::fit(const nn::Matrix& x, const std::vector<double>& y) {
  detail::check_fit_args(x, y, "RandomForestRegressor::fit");
  trees_.clear();
  trees_.reserve(config_.n_trees);
  Rng rng(config_.seed);
  const auto n_draw = static_cast<std::size_t>(
      config_.bootstrap_fraction * static_cast<double>(x.rows()));
  std::vector<std::size_t> rows(std::max<std::size_t>(1, n_draw));
  for (std::size_t t = 0; t < config_.n_trees; ++t) {
    for (auto& r : rows) r = static_cast<std::size_t>(rng.uniform_index(x.rows()));
    trees_.emplace_back(config_.tree, rng.next_u64());
    trees_.back().fit_rows(x, y, rows);
  }
}

double RandomForestRegressor::predict_one(std::span<const float> x) const {
  GPUFREQ_REQUIRE(fitted(), "RandomForestRegressor: not fitted");
  double s = 0.0;
  for (const auto& tree : trees_) s += tree.predict_one(x);
  return s / static_cast<double>(trees_.size());
}

}  // namespace gpufreq::ml
