#include "gpufreq/ml/cross_validation.hpp"

#include "gpufreq/util/error.hpp"
#include "gpufreq/util/rng.hpp"
#include "gpufreq/util/stats.hpp"

namespace gpufreq::ml {

double CvResult::mean_rmse() const { return stats::mean(fold_rmse); }
double CvResult::mean_mape_accuracy() const { return stats::mean(fold_mape_accuracy); }
double CvResult::mean_r2() const { return stats::mean(fold_r2); }

CvResult k_fold_cv(const nn::Matrix& x, const std::vector<double>& y, std::size_t k,
                   const RegressorFactory& factory, std::uint64_t seed) {
  detail::check_fit_args(x, y, "k_fold_cv");
  GPUFREQ_REQUIRE(k >= 2, "k_fold_cv: need at least 2 folds");
  GPUFREQ_REQUIRE(x.rows() >= k, "k_fold_cv: fewer rows than folds");
  GPUFREQ_REQUIRE(static_cast<bool>(factory), "k_fold_cv: factory must be callable");

  Rng rng(seed);
  const std::vector<std::size_t> order = rng.permutation(x.rows());

  CvResult result;
  const std::size_t n = x.rows();
  for (std::size_t fold = 0; fold < k; ++fold) {
    const std::size_t begin = fold * n / k;
    const std::size_t end = (fold + 1) * n / k;

    nn::Matrix x_train(n - (end - begin), x.cols());
    std::vector<double> y_train;
    y_train.reserve(n - (end - begin));
    nn::Matrix x_test(end - begin, x.cols());
    std::vector<double> y_test;
    y_test.reserve(end - begin);

    std::size_t ti = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = order[i];
      if (i >= begin && i < end) {
        const std::size_t dst = i - begin;
        std::copy(x.row(row).begin(), x.row(row).end(), x_test.row(dst).begin());
        y_test.push_back(y[row]);
      } else {
        std::copy(x.row(row).begin(), x.row(row).end(), x_train.row(ti).begin());
        y_train.push_back(y[row]);
        ++ti;
      }
    }

    const auto model = factory();
    model->fit(x_train, y_train);
    const std::vector<double> pred = model->predict(x_test);
    result.fold_rmse.push_back(stats::rmse(y_test, pred));
    result.fold_mape_accuracy.push_back(stats::mape_accuracy(y_test, pred));
    result.fold_r2.push_back(stats::r2(y_test, pred));
  }
  return result;
}

}  // namespace gpufreq::ml
