#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "gpufreq/ml/regressor.hpp"

namespace gpufreq::ml {

/// Per-fold and aggregate metrics of a k-fold cross-validation run.
struct CvResult {
  std::vector<double> fold_rmse;
  std::vector<double> fold_mape_accuracy;  ///< 100 - MAPE per fold
  std::vector<double> fold_r2;

  double mean_rmse() const;
  double mean_mape_accuracy() const;
  double mean_r2() const;
};

/// Factory producing a fresh, unfitted regressor per fold.
using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

/// k-fold cross-validation: rows are shuffled deterministically (seed),
/// split into k contiguous folds; each fold is scored by a model trained
/// on the remaining rows. Complements the paper's fixed 80/20 hold-out
/// when comparing learner families (Figure 11).
CvResult k_fold_cv(const nn::Matrix& x, const std::vector<double>& y, std::size_t k,
                   const RegressorFactory& factory, std::uint64_t seed = 17);

}  // namespace gpufreq::ml
