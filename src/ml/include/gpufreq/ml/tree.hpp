#pragma once

#include <cstdint>
#include <optional>

#include "gpufreq/ml/regressor.hpp"
#include "gpufreq/util/rng.hpp"

namespace gpufreq::ml {

/// Hyper-parameters shared by the tree, forest, and boosting learners.
struct TreeConfig {
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Features considered per split; 0 = all features.
  std::size_t max_features = 0;
};

/// CART regression tree with exact variance-reduction splits. Building
/// block for RandomForestRegressor and GradientBoostingRegressor, usable
/// standalone as well.
class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig config = {}, std::uint64_t seed = 1);

  void fit(const nn::Matrix& x, const std::vector<double>& y) override;

  /// Fit on a subset of rows (used for bootstrap training in the forest).
  void fit_rows(const nn::Matrix& x, const std::vector<double>& y,
                const std::vector<std::size_t>& rows);

  double predict_one(std::span<const float> x) const override;
  const char* name() const override { return "tree"; }
  bool fitted() const override { return !nodes_.empty(); }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

 private:
  struct Node {
    // Leaf iff feature == -1.
    int feature = -1;
    float threshold = 0.0f;
    double value = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  std::int32_t build(const nn::Matrix& x, const std::vector<double>& y,
                     std::vector<std::size_t>& rows, std::size_t begin, std::size_t end,
                     std::size_t depth, Rng& rng);

  TreeConfig config_;
  std::uint64_t seed_;
  std::vector<Node> nodes_;
};

}  // namespace gpufreq::ml
