#pragma once

#include "gpufreq/ml/regressor.hpp"
#include "gpufreq/util/rng.hpp"

namespace gpufreq::ml {

/// Epsilon-insensitive Support Vector Regression with an RBF kernel (the
/// paper's SVR baseline). The dual is solved by cyclic coordinate descent
/// over beta_i = alpha_i - alpha_i^* in [-C, C]; the bias is absorbed by
/// augmenting the kernel with a constant (K + 1), which removes the
/// sum(beta) = 0 equality constraint and makes single-coordinate updates
/// exact (soft-thresholded by epsilon).
///
/// Kernel methods are O(n^2) in training-set size, so fits larger than
/// `max_train_rows` are deterministically subsampled (as is standard
/// practice when benchmarking SVR on profiling datasets).
class SvrRegressor final : public Regressor {
 public:
  struct Config {
    double c = 10.0;            ///< box constraint
    double epsilon = 0.01;      ///< epsilon-tube half-width
    double gamma = -1.0;        ///< RBF width; <=0 -> 1 / (d * var) like sklearn "scale"
    std::size_t max_iters = 60; ///< full passes of coordinate descent
    double tol = 1e-4;          ///< max |delta beta| convergence threshold
    std::size_t max_train_rows = 1500;
    std::uint64_t seed = 13;
  };

  SvrRegressor() : SvrRegressor(Config{}) {}
  explicit SvrRegressor(Config config);

  void fit(const nn::Matrix& x, const std::vector<double>& y) override;
  double predict_one(std::span<const float> x) const override;
  const char* name() const override { return "svr"; }
  bool fitted() const override { return !beta_.empty(); }

  /// Number of support vectors (|beta| > 1e-8) after fitting.
  std::size_t support_vector_count() const;

 private:
  double kernel(std::span<const float> a, std::span<const float> b) const;

  Config config_;
  double gamma_eff_ = 1.0;
  nn::Matrix support_x_;
  std::vector<double> beta_;
};

}  // namespace gpufreq::ml
