#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpufreq/nn/matrix.hpp"

namespace gpufreq::ml {

/// Common interface for the multi-learner baselines the paper compares the
/// DNN against in Figure 11 (RFR, XGBR, SVR, MLR).
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fit on (x, y); y.size() must equal x.rows().
  virtual void fit(const nn::Matrix& x, const std::vector<double>& y) = 0;

  /// Predict a single feature row. Requires a prior fit().
  virtual double predict_one(std::span<const float> x) const = 0;

  /// Predict every row of x.
  std::vector<double> predict(const nn::Matrix& x) const;

  virtual const char* name() const = 0;
  virtual bool fitted() const = 0;
};

/// Factory by paper abbreviation: "mlr", "rfr", "xgbr", "svr".
std::unique_ptr<Regressor> make_regressor(const std::string& name);

namespace detail {
void check_fit_args(const nn::Matrix& x, const std::vector<double>& y, const char* who);
}

}  // namespace gpufreq::ml
