#pragma once

#include "gpufreq/ml/tree.hpp"

namespace gpufreq::ml {

/// Gradient-boosted regression trees (the paper's XGBR baseline):
/// stagewise fitting of shallow CART trees to squared-loss residuals with
/// shrinkage and optional row subsampling.
class GradientBoostingRegressor final : public Regressor {
 public:
  struct Config {
    std::size_t n_rounds = 150;
    double learning_rate = 0.10;
    double subsample = 0.8;
    TreeConfig tree = {.max_depth = 4, .min_samples_leaf = 3,
                       .min_samples_split = 6, .max_features = 0};
    std::uint64_t seed = 11;
  };

  GradientBoostingRegressor() : GradientBoostingRegressor(Config{}) {}
  explicit GradientBoostingRegressor(Config config);

  void fit(const nn::Matrix& x, const std::vector<double>& y) override;
  double predict_one(std::span<const float> x) const override;
  const char* name() const override { return "xgbr"; }
  bool fitted() const override { return fitted_; }

  std::size_t round_count() const { return trees_.size(); }

 private:
  Config config_;
  double base_ = 0.0;
  bool fitted_ = false;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace gpufreq::ml
