#pragma once

#include "gpufreq/ml/regressor.hpp"

namespace gpufreq::ml {

/// Multiple Linear Regression (the paper's MLR baseline): ordinary least
/// squares via the normal equations with a tiny ridge term for numerical
/// stability. Exact for the small feature counts used here.
class LinearRegressor final : public Regressor {
 public:
  explicit LinearRegressor(double ridge = 1e-8) : ridge_(ridge) {}

  void fit(const nn::Matrix& x, const std::vector<double>& y) override;
  double predict_one(std::span<const float> x) const override;
  const char* name() const override { return "mlr"; }
  bool fitted() const override { return !coef_.empty(); }

  /// Fitted coefficients (per feature) and intercept.
  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double ridge_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace gpufreq::ml
