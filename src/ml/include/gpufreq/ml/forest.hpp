#pragma once

#include "gpufreq/ml/tree.hpp"

namespace gpufreq::ml {

/// Random Forest regressor (the paper's RFR baseline): bagged CART trees
/// with per-split feature subsampling; predictions are tree averages.
class RandomForestRegressor final : public Regressor {
 public:
  struct Config {
    std::size_t n_trees = 60;
    TreeConfig tree = {.max_depth = 14, .min_samples_leaf = 2,
                       .min_samples_split = 4, .max_features = 2};
    double bootstrap_fraction = 1.0;
    std::uint64_t seed = 7;
  };

  RandomForestRegressor() : RandomForestRegressor(Config{}) {}
  explicit RandomForestRegressor(Config config);

  void fit(const nn::Matrix& x, const std::vector<double>& y) override;
  double predict_one(std::span<const float> x) const override;
  const char* name() const override { return "rfr"; }
  bool fitted() const override { return !trees_.empty(); }

  std::size_t tree_count() const { return trees_.size(); }

 private:
  Config config_;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace gpufreq::ml
