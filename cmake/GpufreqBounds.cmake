# gpufreq_register_bounds_gate()
#
# Wires the resource-bound prover (tools/analyze/gpufreq_bounds.py) into
# the build. The analyzer reuses the hot-path call graph (disassembled
# from the libgpufreq_*.a archives), joins it with the per-function
# `-fstack-usage` data emitted when GPUFREQ_STACK_USAGE is ON, and fails
# if any GPUFREQ_HOT root exceeds its worst-case stack budget, can reach
# recursion or an alloca/VLA frame, or if any writable global in the
# archives lacks a synchronization story in tools/analyze/bounds_allow.txt
# (see DESIGN.md §8).
#
# Registers:
#   * `bounds_check` — custom target that rebuilds the proof on demand
#     (`cmake --build build --target bounds_check`). Depends on the
#     archives so the `.su` files and objects are always fresh.
#   * `bounds_real_tree` — ctest entry running the same proof, registered
#     under the same conditions as hotpath_real_tree: optimized
#     (Release/RelWithDebInfo), unsanitized builds. Sanitizer
#     instrumentation inflates every frame with redzone spills, and -O0
#     keeps frames the optimizer provably shrinks, so the bound is only
#     meaningful on the shipped configuration. Additionally requires
#     GPUFREQ_STACK_USAGE=ON, since the proof is vacuous without frame
#     sizes.
#
# Degrades to a warning when python3 or binutils is missing, mirroring
# the hotpath gate.

function(gpufreq_register_bounds_gate)
  find_package(Python3 COMPONENTS Interpreter)
  find_program(GPUFREQ_BOUNDS_OBJDUMP objdump)
  find_program(GPUFREQ_BOUNDS_READELF readelf)
  find_program(GPUFREQ_BOUNDS_CXXFILT c++filt)
  if(NOT Python3_FOUND OR NOT GPUFREQ_BOUNDS_OBJDUMP
     OR NOT GPUFREQ_BOUNDS_READELF OR NOT GPUFREQ_BOUNDS_CXXFILT)
    message(WARNING "resource-bound gate not registered "
      "(needs python3 + binutils objdump/readelf/c++filt)")
    return()
  endif()
  if(NOT GPUFREQ_STACK_USAGE)
    message(STATUS "resource-bound gate not registered: "
      "GPUFREQ_STACK_USAGE is OFF, no -fstack-usage data to consume")
    return()
  endif()

  set(analyzer "${CMAKE_SOURCE_DIR}/tools/analyze/gpufreq_bounds.py")
  set(allowlist "${CMAKE_SOURCE_DIR}/tools/analyze/bounds_allow.txt")
  set(bounds_cmd
    "${Python3_EXECUTABLE}" "${analyzer}"
    --build-dir "${CMAKE_BINARY_DIR}"
    --allowlist "${allowlist}")

  set(archive_targets
    gpufreq_util gpufreq_workloads gpufreq_sim gpufreq_nn gpufreq_ml
    gpufreq_dcgm gpufreq_features gpufreq_core gpufreq_serve)

  add_custom_target(bounds_check
    COMMAND ${bounds_cmd}
    WORKING_DIRECTORY "${CMAKE_SOURCE_DIR}"
    COMMENT "bounds: proving GPUFREQ_HOT stack budgets, recursion-freedom, and the writable-global audit"
    VERBATIM)
  add_dependencies(bounds_check ${archive_targets})

  if(NOT GPUFREQ_BUILD_TESTS)
    return()
  endif()
  if(NOT GPUFREQ_SANITIZE STREQUAL "")
    message(STATUS "bounds_real_tree not registered: sanitizer build "
      "(GPUFREQ_SANITIZE=${GPUFREQ_SANITIZE}) inflates stack frames")
    return()
  endif()
  if(NOT CMAKE_BUILD_TYPE MATCHES "^(Release|RelWithDebInfo)$")
    message(STATUS "bounds_real_tree not registered: build type "
      "'${CMAKE_BUILD_TYPE}' is not an optimized configuration")
    return()
  endif()

  add_test(NAME bounds_real_tree
    COMMAND ${bounds_cmd}
    WORKING_DIRECTORY "${CMAKE_SOURCE_DIR}")
  set_tests_properties(bounds_real_tree PROPERTIES TIMEOUT 120)
endfunction()
