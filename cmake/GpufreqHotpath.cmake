# gpufreq_register_hotpath_gate()
#
# Wires the hot-path purity analyzer (tools/analyze/gpufreq_hotpath.py)
# into the build. The analyzer disassembles the built libgpufreq_*.a
# archives, walks the call graph from every GPUFREQ_HOT root, and fails if
# any root can reach an allocation, throw, lock acquisition, IO call, or
# unvouched indirect/extern call that is not sanctioned by
# tools/analyze/hotpath_allow.txt (see DESIGN.md §8).
#
# Registers:
#   * `hotpath_check` — custom target that rebuilds the proof on demand
#     (`cmake --build build --target hotpath_check`). Depends on the
#     archives, so it is always run against fresh objects, and drops the
#     extracted root manifest at ${CMAKE_BINARY_DIR}/hotpath_roots.txt.
#   * `hotpath_real_tree` — ctest entry running the same proof, registered
#     only for optimized (Release/RelWithDebInfo), unsanitized builds:
#     sanitizers interpose allocation/lock machinery into every function,
#     and -O0 keeps cold branches that optimized codegen provably folds
#     away, so the proof is only meaningful on the shipped configuration.
#
# The binutils toolchain (objdump/readelf/c++filt) ships with any gcc
# install; when it or python3 is missing the gate degrades to a warning so
# exotic local setups still configure.

function(gpufreq_register_hotpath_gate)
  find_package(Python3 COMPONENTS Interpreter)
  find_program(GPUFREQ_HOTPATH_OBJDUMP objdump)
  find_program(GPUFREQ_HOTPATH_READELF readelf)
  find_program(GPUFREQ_HOTPATH_CXXFILT c++filt)
  if(NOT Python3_FOUND OR NOT GPUFREQ_HOTPATH_OBJDUMP
     OR NOT GPUFREQ_HOTPATH_READELF OR NOT GPUFREQ_HOTPATH_CXXFILT)
    message(WARNING "hot-path purity gate not registered "
      "(needs python3 + binutils objdump/readelf/c++filt)")
    return()
  endif()

  set(analyzer "${CMAKE_SOURCE_DIR}/tools/analyze/gpufreq_hotpath.py")
  set(allowlist "${CMAKE_SOURCE_DIR}/tools/analyze/hotpath_allow.txt")
  set(hotpath_cmd
    "${Python3_EXECUTABLE}" "${analyzer}"
    --build-dir "${CMAKE_BINARY_DIR}"
    --allowlist "${allowlist}"
    --write-roots "${CMAKE_BINARY_DIR}/hotpath_roots.txt")

  set(archive_targets
    gpufreq_util gpufreq_workloads gpufreq_sim gpufreq_nn gpufreq_ml
    gpufreq_dcgm gpufreq_features gpufreq_core gpufreq_serve)

  add_custom_target(hotpath_check
    COMMAND ${hotpath_cmd}
    WORKING_DIRECTORY "${CMAKE_SOURCE_DIR}"
    COMMENT "hotpath: proving the GPUFREQ_HOT zero-alloc/lock/throw contract"
    VERBATIM)
  add_dependencies(hotpath_check ${archive_targets})

  if(NOT GPUFREQ_BUILD_TESTS)
    return()
  endif()
  if(NOT GPUFREQ_SANITIZE STREQUAL "")
    message(STATUS "hotpath_real_tree not registered: sanitizer build "
      "(GPUFREQ_SANITIZE=${GPUFREQ_SANITIZE}) interposes alloc/lock machinery")
    return()
  endif()
  if(NOT CMAKE_BUILD_TYPE MATCHES "^(Release|RelWithDebInfo)$")
    message(STATUS "hotpath_real_tree not registered: build type "
      "'${CMAKE_BUILD_TYPE}' is not an optimized configuration")
    return()
  endif()

  add_test(NAME hotpath_real_tree
    COMMAND ${hotpath_cmd}
    WORKING_DIRECTORY "${CMAKE_SOURCE_DIR}")
  set_tests_properties(hotpath_real_tree PROPERTIES TIMEOUT 120)
endfunction()
