# gpufreq_add_header_selfcontain_checks(<module>)
#
# Enforces header self-containment permanently in the build: for every
# public header under src/<module>/include/, generate a one-line
# translation unit that includes just that header, and compile all of them
# into an OBJECT library `gpufreq_selfcontain_<module>` built with the full
# `gpufreq_warnings` set. A header that secretly depends on its includer
# (missing <string>, undeclared gpufreq type, ...) breaks the build right
# here instead of in whichever consumer reshuffles its includes next.
#
# The object targets are part of ALL, and each module also registers a
# ctest entry `selfcontain_<module>` that re-drives the target build, so a
# plain `ctest` run reports self-containment per module. The ctest entries
# share a RESOURCE_LOCK because concurrent build-system invocations in one
# build tree are not safe.
#
# tools/analyze/gpufreq_arch.py --check selfcontain performs the same check
# compiler-only (no CMake) for the analysis gate and the fixture tests.

function(gpufreq_add_header_selfcontain_checks module)
  set(inc_dir "${CMAKE_CURRENT_SOURCE_DIR}/include")
  if(NOT IS_DIRECTORY "${inc_dir}")
    message(FATAL_ERROR "gpufreq_add_header_selfcontain_checks(${module}): "
      "no include/ directory at ${inc_dir}")
  endif()

  file(GLOB_RECURSE headers CONFIGURE_DEPENDS "${inc_dir}/*.hpp")
  if(NOT headers)
    message(FATAL_ERROR "gpufreq_add_header_selfcontain_checks(${module}): "
      "no public headers under ${inc_dir}")
  endif()

  set(tus)
  foreach(header IN LISTS headers)
    file(RELATIVE_PATH rel "${inc_dir}" "${header}")
    string(REGEX REPLACE "[/.]" "_" stem "${rel}")
    set(tu "${CMAKE_CURRENT_BINARY_DIR}/selfcontain/${stem}.cpp")
    # file(GENERATE) leaves the TU untouched when the content is unchanged,
    # so reconfiguring does not trigger spurious recompiles.
    file(GENERATE OUTPUT "${tu}" CONTENT "#include \"${rel}\"\n")
    list(APPEND tus "${tu}")
  endforeach()

  add_library(gpufreq_selfcontain_${module} OBJECT ${tus})
  target_link_libraries(gpufreq_selfcontain_${module} PRIVATE
    gpufreq::${module} gpufreq_warnings)

  if(GPUFREQ_BUILD_TESTS)
    add_test(NAME selfcontain_${module}
      COMMAND "${CMAKE_COMMAND}" --build "${CMAKE_BINARY_DIR}"
              --target gpufreq_selfcontain_${module})
    list(LENGTH headers n_headers)
    set_tests_properties(selfcontain_${module} PROPERTIES
      TIMEOUT 300
      RESOURCE_LOCK gpufreq_build_tree
      LABELS "selfcontain")
    message(STATUS "selfcontain_${module}: ${n_headers} public header(s)")
  endif()
endfunction()
